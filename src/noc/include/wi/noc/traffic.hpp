#pragma once
/// \file traffic.hpp
/// \brief Traffic patterns. Fig. 8 uses global uniform traffic with
///        Poisson arrivals; hotspot/transpose/bit-complement patterns
///        back the additional design-space studies.

#include <cstddef>
#include <vector>

namespace wi::noc {

/// Destination probability distribution per source module:
/// entry (s, d) is the probability that a packet from s targets d
/// (zero on the diagonal; rows sum to 1).
class TrafficPattern {
 public:
  /// Global uniform: every other module equally likely.
  [[nodiscard]] static TrafficPattern uniform(std::size_t modules);

  /// Transpose: module i sends to (i + M/2) mod M.
  [[nodiscard]] static TrafficPattern transpose(std::size_t modules);

  /// Bit-complement on the module index (modules must be a power of 2).
  [[nodiscard]] static TrafficPattern bit_complement(std::size_t modules);

  /// Uniform with a fraction of traffic focused on one hotspot module.
  [[nodiscard]] static TrafficPattern hotspot(std::size_t modules,
                                              std::size_t hotspot_module,
                                              double hotspot_fraction);

  [[nodiscard]] std::size_t modules() const { return modules_; }
  [[nodiscard]] double probability(std::size_t src, std::size_t dst) const {
    return matrix_[src * modules_ + dst];
  }

  /// Explicit matrix constructor (rows are normalised).
  explicit TrafficPattern(std::vector<double> matrix, std::size_t modules);

 private:
  std::size_t modules_;
  std::vector<double> matrix_;
};

}  // namespace wi::noc

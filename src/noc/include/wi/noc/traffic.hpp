#pragma once
/// \file traffic.hpp
/// \brief Traffic patterns. Fig. 8 uses global uniform traffic with
///        Poisson arrivals; hotspot/transpose/bit-complement/tornado
///        patterns back the additional design-space studies.
///
/// Two representations share one value type:
///
/// * **Dense**: an explicit modules x modules probability matrix
///   (`probability(s, d)` is one load). This is the original
///   representation; every committed golden was produced through it and
///   the factories below build byte-identical matrices.
/// * **Implicit**: an analytic pattern (uniform, transpose,
///   bit-complement, hotspot, tornado) holding O(1) state. Destination
///   sampling is closed-form — an exact integer-space bounded draw on
///   the same `Rng::raw()` stream the dense CDF sampler consumes — so a
///   32x32x32-router mesh needs no 8.6 GB CDF array. `probability()`
///   still answers exactly (the analytic value the dense twin's
///   normalised matrix would hold), which keeps the analytic queueing
///   model and validation code representation-agnostic.
///
/// The simulators auto-select: dense patterns take the CDF path
/// (bit-identical to every committed golden), implicit patterns take
/// `sample()`. For the permutation patterns (transpose, bit-complement,
/// tornado) `sample()` consumes exactly one raw draw per hit — the same
/// count as the dense CDF sampler — so dense and implicit runs of a
/// permutation pattern are bit-identical, not just statistically equal.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "wi/common/rng.hpp"

namespace wi::noc {

/// Representation + analytic family of a TrafficPattern.
enum class TrafficPatternKind {
  kDense,          ///< explicit probability matrix
  kUniform,        ///< every other module equally likely
  kTranspose,      ///< module i -> (i + M/2) mod M
  kBitComplement,  ///< module i -> M-1-i (M a power of two)
  kHotspot,        ///< uniform + extra mass on one hot module
  kTornado,        ///< half-ring offset per mesh dimension
};

/// Destination probability distribution per source module:
/// entry (s, d) is the probability that a packet from s targets d
/// (zero on the diagonal; rows sum to 1).
class TrafficPattern {
 public:
  // --- dense factories (byte-identical matrices to the original
  // implementation; all committed goldens flow through these) ---

  /// Global uniform: every other module equally likely.
  [[nodiscard]] static TrafficPattern uniform(std::size_t modules);

  /// Transpose: module i sends to (i + M/2) mod M.
  [[nodiscard]] static TrafficPattern transpose(std::size_t modules);

  /// Bit-complement on the module index (modules must be a power of 2).
  [[nodiscard]] static TrafficPattern bit_complement(std::size_t modules);

  /// Uniform with a fraction of traffic focused on one hotspot module.
  [[nodiscard]] static TrafficPattern hotspot(std::size_t modules,
                                              std::size_t hotspot_module,
                                              double hotspot_fraction);

  /// Tornado on a kx x ky x kz mesh of modules (one module per router):
  /// each coordinate shifts by (k-1)/2 in its dimension. Requires
  /// modules == kx*ky*kz and at least one extent >= 3 (otherwise every
  /// shift is zero and the pattern degenerates to self-traffic).
  [[nodiscard]] static TrafficPattern tornado(std::size_t modules,
                                              std::size_t kx, std::size_t ky,
                                              std::size_t kz);

  // --- implicit factories: O(1) memory, closed-form sampling ---

  [[nodiscard]] static TrafficPattern implicit_uniform(std::size_t modules);
  [[nodiscard]] static TrafficPattern implicit_transpose(std::size_t modules);
  [[nodiscard]] static TrafficPattern implicit_bit_complement(
      std::size_t modules);
  [[nodiscard]] static TrafficPattern implicit_hotspot(
      std::size_t modules, std::size_t hotspot_module,
      double hotspot_fraction);
  [[nodiscard]] static TrafficPattern implicit_tornado(std::size_t modules,
                                                       std::size_t kx,
                                                       std::size_t ky,
                                                       std::size_t kz);

  [[nodiscard]] std::size_t modules() const { return modules_; }
  [[nodiscard]] TrafficPatternKind kind() const { return kind_; }

  /// True for the analytic kinds: O(1) state, `sample()` available, no
  /// matrix or CDF ever materialised.
  [[nodiscard]] bool implicit_form() const {
    return kind_ != TrafficPatternKind::kDense;
  }

  [[nodiscard]] double probability(std::size_t src, std::size_t dst) const {
    if (kind_ == TrafficPatternKind::kDense) {
      return matrix_[src * modules_ + dst];
    }
    return analytic_probability(src, dst);
  }

  /// Closed-form destination draw for implicit patterns (throws for
  /// dense — those sample through their CDF). Consumes exactly one
  /// `rng.raw()` per call — the same single draw the dense CDF sampler
  /// takes per offered packet — except the hotspot non-hot branch,
  /// which needs a second draw for its uniform remainder. Every core
  /// (legacy, event, partitioned) calls this one function, so the
  /// sampled stream is bit-identical at any thread/partition count.
  [[nodiscard]] std::size_t sample(Rng& rng, std::size_t src) const {
    const std::uint64_t x = rng.raw() >> 11;  // 53 uniform bits
    switch (kind_) {
      case TrafficPatternKind::kUniform:
        return bounded_excluding(x, src);
      case TrafficPatternKind::kTranspose:
        return (src + modules_ / 2) % modules_;
      case TrafficPatternKind::kBitComplement:
        return modules_ - 1 - src;
      case TrafficPatternKind::kTornado:
        return tornado_target(src);
      case TrafficPatternKind::kHotspot: {
        if (src != hot_module_ && x < hot_thresh_) return hot_module_;
        const std::uint64_t y = rng.raw() >> 11;
        return bounded_excluding(y, src);
      }
      case TrafficPatternKind::kDense:
        break;
    }
    dense_sample_unsupported();
  }

  // Hotspot/tornado parameters (meaningful for those kinds only; the
  // queueing model's aggregate load builder reads them).
  [[nodiscard]] std::size_t hotspot_module() const { return hot_module_; }
  [[nodiscard]] double hotspot_fraction() const { return hot_fraction_; }

  /// Permutation target of `src` for the permutation kinds (transpose,
  /// bit-complement, tornado).
  [[nodiscard]] std::size_t permutation_target(std::size_t src) const;

  /// Explicit matrix constructor. Validates — every entry must be a
  /// finite probability >= 0 and every row must sum to 1 within 1e-6 —
  /// then normalises rows exactly as the original implementation did,
  /// so accepted matrices produce bit-identical patterns. Throws
  /// wi::StatusError(kInvalidSpec) on bad input.
  explicit TrafficPattern(std::vector<double> matrix, std::size_t modules);

 private:
  /// Factory path: entries are non-negative by construction and rows
  /// deliberately sum to row totals != 1 (e.g. uniform's raw 1.0
  /// entries); skip the sum check, keep the normalisation bit-exact.
  struct Unchecked {};
  TrafficPattern(Unchecked, std::vector<double> matrix, std::size_t modules);
  /// Analytic pattern (no matrix).
  TrafficPattern(TrafficPatternKind kind, std::size_t modules);

  [[nodiscard]] double analytic_probability(std::size_t src,
                                            std::size_t dst) const;
  [[noreturn]] static void dense_sample_unsupported();

  /// floor(bits53 * (modules-1) / 2^53) skip-self-mapped into
  /// [0, modules) \ {src}: the exact integer-space bounded draw (the
  /// scaling by 2^53 is exact, so there is no float roundoff to agree
  /// on between cores).
  [[nodiscard]] std::size_t bounded_excluding(std::uint64_t bits53,
                                              std::size_t src) const {
    const std::uint64_t j = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(bits53) *
         static_cast<unsigned __int128>(modules_ - 1)) >>
        53);
    return static_cast<std::size_t>(j) + (j >= src ? 1 : 0);
  }

  [[nodiscard]] std::size_t tornado_target(std::size_t src) const {
    const std::size_t x = src % kx_;
    const std::size_t rest = src / kx_;
    const std::size_t y = rest % ky_;
    const std::size_t z = rest / ky_;
    const std::size_t tx = (x + (kx_ - 1) / 2) % kx_;
    const std::size_t ty = (y + (ky_ - 1) / 2) % ky_;
    const std::size_t tz = (z + (kz_ - 1) / 2) % kz_;
    return (tz * ky_ + ty) * kx_ + tx;
  }

  TrafficPatternKind kind_ = TrafficPatternKind::kDense;
  std::size_t modules_ = 0;
  std::vector<double> matrix_;  ///< dense only
  // Hotspot parameters. hot_thresh_ = ceil(fraction * 2^53): `raw
  // bits53 < hot_thresh_` is exactly the `uniform() < fraction`
  // Bernoulli test in integer space.
  std::size_t hot_module_ = 0;
  double hot_fraction_ = 0.0;
  std::uint64_t hot_thresh_ = 0;
  // Tornado mesh extents.
  std::size_t kx_ = 1;
  std::size_t ky_ = 1;
  std::size_t kz_ = 1;
};

}  // namespace wi::noc

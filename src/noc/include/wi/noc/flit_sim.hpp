#pragma once
/// \file flit_sim.hpp
/// \brief Cycle-based flit-level NoC simulator.
///
/// Independent cross-check of the analytic queueing model: input-queued
/// routers, round-robin output arbitration, deterministic routing,
/// Poisson packet injection per module. One flit moves per output
/// channel per cycle (per-channel bandwidth b moves up to b flits);
/// router traversal adds a fixed pipeline delay.
///
/// Engineered for throughput: preallocated ring-buffer FIFOs, hoisted
/// per-output bandwidth budgets, and an up-front
/// (router, dst_router) -> (link, output port) table replacing lazy
/// routing calls. Results are deterministic per seed and bit-identical
/// to the original deque-based implementation. Routing failures
/// (unreachable pairs, inconsistent next hops) are recorded during
/// table construction and thrown once as wi::StatusError the first time
/// a flit actually needs the failed route.
///
/// Fault injection: the six-argument overload takes a
/// wi::fault::FaultSchedule of link/router failures. When an event
/// activates, the dead entity's buffered flits are destroyed and the
/// next-hop table is recomputed over the surviving graph (deterministic
/// reverse BFS, minimal hops, lowest link index first), so traffic
/// reroutes around the failure. Destinations cut off from a source
/// surface as wi::Status rows in FlitSimResult::route_failures — flits
/// bound for them are dropped and counted, never thrown. An empty
/// schedule takes the exact legacy code path bit for bit.

#include <cstdint>
#include <vector>

#include "wi/common/fault.hpp"
#include "wi/common/status.hpp"
#include "wi/noc/routing.hpp"
#include "wi/noc/topology.hpp"
#include "wi/noc/traffic.hpp"

namespace wi::noc {

/// Simulator core selection. kAuto picks the event-driven core whenever
/// the router delay is >= 1 cycle (the event wheel needs a nonzero
/// pipeline depth to bound wake horizons) and the cycle-stepped legacy
/// loop otherwise. Both cores are bit-identical; kLegacy exists as the
/// differential-testing oracle and the zero-delay fallback.
enum class FlitSimCore {
  kAuto,
  kLegacy,  ///< original cycle-stepped loop (visits every router)
  kEvent,   ///< event-wheel + SoA core (requires router delay >= 1)
};

/// Simulator settings.
struct FlitSimConfig {
  std::size_t warmup_cycles = 3000;    ///< excluded from statistics
  std::size_t measure_cycles = 20000;  ///< measurement window
  std::size_t drain_cycles = 20000;    ///< post-window drain limit
  std::size_t buffer_depth = 8;        ///< input queue capacity [flits]
  double router_delay_cycles = 2.0;    ///< pipeline depth
  std::uint64_t seed = 1;
  /// Worker threads for the partitioned-parallel event core (0 = one
  /// per hardware thread). Results are bit-identical at any value.
  std::size_t threads = 1;
  /// Mesh partitions (contiguous router ranges) for the parallel mode;
  /// 0 derives the count from `threads`. 1 partition = sequential core.
  std::size_t partitions = 0;
  FlitSimCore core = FlitSimCore::kAuto;
};

/// Aggregated results.
struct FlitSimResult {
  double mean_latency_cycles = 0.0;   ///< inject->eject, measured packets
  double delivered_per_cycle = 0.0;   ///< throughput per module
  std::size_t delivered = 0;          ///< measured packets delivered
  std::size_t injected = 0;           ///< measured packets injected
  bool stable = false;                ///< queues drained afterwards
  // Fault-mode accounting (all zero when the schedule is empty).
  std::size_t dropped = 0;            ///< measured packets destroyed by a
                                      ///< fault activation (buffered at a
                                      ///< dying entity, or offered at a
                                      ///< dead source)
  std::size_t unreachable = 0;        ///< measured packets dropped for
                                      ///< want of a live route
  std::size_t dead_links = 0;         ///< links dead by the end (incl.
                                      ///< collateral of router deaths)
  std::size_t dead_routers = 0;       ///< routers dead by the end
  /// Unique route failures hit by actual traffic (first few, one per
  /// (source router, destination router) pair) — the Status rows the
  /// fault_sweep workload surfaces instead of a throw.
  std::vector<Status> route_failures;
  /// Diagnostics (not part of any golden): router turns the core
  /// actually executed. The event core only turns routers with pending
  /// work, so this is 0 for a zero-traffic run and far below
  /// routers * cycles at low load; the legacy core leaves it 0.
  std::uint64_t turns_executed = 0;
};

/// Run one simulation at a given injection rate [packets/cycle/module]
/// (single-flit packets, matching the analytic model's default).
[[nodiscard]] FlitSimResult simulate_network(const Topology& topology,
                                             const Routing& routing,
                                             const TrafficPattern& traffic,
                                             double injection_rate,
                                             const FlitSimConfig& config = {});

/// Fault-injecting overload: link/router failures from `faults` strike
/// at their scheduled cycles and traffic reroutes over the surviving
/// graph. With an empty schedule this is bit-identical to the overload
/// above.
[[nodiscard]] FlitSimResult simulate_network(const Topology& topology,
                                             const Routing& routing,
                                             const TrafficPattern& traffic,
                                             double injection_rate,
                                             const FlitSimConfig& config,
                                             const fault::FaultSchedule& faults);

}  // namespace wi::noc

#include "wi/noc/flit_sim.hpp"

#include <deque>
#include <stdexcept>

#include "wi/common/rng.hpp"

namespace wi::noc {

namespace {

struct Flit {
  std::size_t dst_router = 0;
  std::size_t dst_module = 0;
  std::uint64_t inject_cycle = 0;
  bool measured = false;
  std::uint64_t ready_cycle = 0;  ///< earliest cycle it can move again
};

/// One FIFO per channel (plus per-router injection FIFOs).
struct Queue {
  std::deque<Flit> flits;
};

}  // namespace

FlitSimResult simulate_network(const Topology& topology,
                               const Routing& routing,
                               const TrafficPattern& traffic,
                               double injection_rate,
                               const FlitSimConfig& config) {
  const std::size_t modules = topology.module_count();
  const std::size_t routers = topology.router_count();
  const std::size_t channels = topology.link_count();
  if (traffic.modules() != modules) {
    throw std::invalid_argument("simulate_network: traffic mismatch");
  }

  // Per-destination cumulative distribution per source for fast sampling.
  std::vector<std::vector<double>> cdf(modules, std::vector<double>(modules));
  for (std::size_t s = 0; s < modules; ++s) {
    double acc = 0.0;
    for (std::size_t d = 0; d < modules; ++d) {
      acc += traffic.probability(s, d);
      cdf[s][d] = acc;
    }
  }

  // Next-hop lookup: for (router, dst_router) we ask the routing function
  // on demand and cache the first link of the path.
  std::vector<std::size_t> next_link_cache(routers * routers, Topology::npos);
  auto next_link = [&](std::size_t at, std::size_t dst) {
    std::size_t& cached = next_link_cache[at * routers + dst];
    if (cached == Topology::npos) {
      const Route r = routing.route(topology, at, dst);
      cached = r.empty() ? Topology::npos : r.front();
      if (r.empty()) {
        throw std::logic_error("simulate_network: empty route for transit");
      }
    }
    return cached;
  };

  std::vector<Queue> channel_queue(channels);
  std::vector<Queue> inject_queue(routers);
  std::vector<std::size_t> rr_state(routers, 0);  // round-robin pointer

  // Incoming channel list per router.
  std::vector<std::vector<std::size_t>> in_channels(routers);
  for (std::size_t l = 0; l < channels; ++l) {
    in_channels[topology.link(l).dst].push_back(l);
  }

  Rng rng(config.seed);
  FlitSimResult result;
  double latency_sum = 0.0;

  const std::uint64_t total_cycles = config.warmup_cycles +
                                     config.measure_cycles +
                                     config.drain_cycles;
  const std::uint64_t measure_begin = config.warmup_cycles;
  const std::uint64_t measure_end =
      config.warmup_cycles + config.measure_cycles;

  for (std::uint64_t cycle = 0; cycle < total_cycles; ++cycle) {
    const bool in_window = cycle >= measure_begin && cycle < measure_end;
    // 1. Injection: Bernoulli approximation of Poisson arrivals
    //    (injection_rate < 1 per module per cycle).
    if (cycle < measure_end) {
      for (std::size_t m = 0; m < modules; ++m) {
        if (!rng.bernoulli(injection_rate)) continue;
        const double u = rng.uniform();
        std::size_t d = 0;
        while (d + 1 < modules && cdf[m][d] < u) ++d;
        Flit flit;
        flit.dst_module = d;
        flit.dst_router = topology.module_router(d);
        flit.inject_cycle = cycle;
        flit.measured = in_window;
        flit.ready_cycle = cycle;
        if (flit.measured) ++result.injected;
        inject_queue[topology.module_router(m)].flits.push_back(flit);
      }
    }

    // 2. Switch allocation per router: each output channel (and the
    //    ejection port) accepts up to `bandwidth` flits per cycle,
    //    round-robin over the input queues (injection + incoming
    //    channels).
    for (std::size_t r = 0; r < routers; ++r) {
      // Budget per output channel this cycle.
      const auto& outs = topology.out_links(r);
      std::vector<int> budget(outs.size());
      for (std::size_t i = 0; i < outs.size(); ++i) {
        budget[i] = static_cast<int>(topology.link(outs[i]).bandwidth);
        if (budget[i] < 1) budget[i] = 1;
      }
      int eject_budget = 1;

      // Input queue list: index 0 = injection, then incoming channels.
      const std::size_t n_inputs = 1 + in_channels[r].size();
      const std::size_t start = rr_state[r] % n_inputs;
      for (std::size_t k = 0; k < n_inputs; ++k) {
        const std::size_t qi = (start + k) % n_inputs;
        Queue& q = (qi == 0) ? inject_queue[r]
                             : channel_queue[in_channels[r][qi - 1]];
        // Move as many head flits as outputs allow (one per output).
        while (!q.flits.empty()) {
          Flit& flit = q.flits.front();
          if (flit.ready_cycle > cycle) break;
          if (flit.dst_router == r) {
            if (eject_budget <= 0) break;
            --eject_budget;
            // Delivered.
            if (flit.measured) {
              ++result.delivered;
              latency_sum += static_cast<double>(
                  cycle + static_cast<std::uint64_t>(
                              config.router_delay_cycles) -
                  flit.inject_cycle);
            }
            q.flits.pop_front();
            continue;
          }
          const std::size_t l = next_link(r, flit.dst_router);
          // Find the local output index.
          std::size_t oi = 0;
          while (outs[oi] != l) ++oi;
          if (budget[oi] <= 0) break;
          Queue& dst_queue = channel_queue[l];
          if (dst_queue.flits.size() >= config.buffer_depth) break;
          --budget[oi];
          Flit moved = flit;
          // A hop costs router_delay cycles total (pipeline + transfer),
          // matching the analytic model's per-hop latency.
          moved.ready_cycle =
              cycle + static_cast<std::uint64_t>(config.router_delay_cycles);
          dst_queue.flits.push_back(moved);
          q.flits.pop_front();
        }
      }
      rr_state[r] = (rr_state[r] + 1) % n_inputs;
    }
  }

  result.mean_latency_cycles =
      result.delivered == 0 ? 0.0
                            : latency_sum / static_cast<double>(result.delivered);
  result.delivered_per_cycle =
      static_cast<double>(result.delivered) /
      (static_cast<double>(config.measure_cycles) *
       static_cast<double>(modules));
  // Stability: everything measured was eventually delivered.
  result.stable = result.delivered >= result.injected * 995 / 1000;
  return result;
}

}  // namespace wi::noc

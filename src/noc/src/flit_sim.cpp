#include "wi/noc/flit_sim.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "flit_sim_internal.hpp"
#include "wi/common/rng.hpp"
#include "wi/common/status.hpp"

namespace wi::noc {

namespace {

/// 32 bytes (half a cache line): the simulator copies flits on every
/// hop, so keeping them small is worth the narrower router index.
struct Flit {
  std::uint32_t dst_router = 0;
  std::uint32_t dst_module = 0;
  std::uint64_t inject_cycle = 0;
  std::uint64_t ready_cycle = 0;  ///< earliest cycle it can move again
  bool measured = false;
};

/// Preallocated power-of-two ring buffer FIFO. Channel queues never
/// outgrow the configured buffer depth; injection queues double on
/// demand (amortised O(1), no per-flit allocation in steady state).
///
/// The head flit's ready cycle is mirrored into the ring header (with
/// "never" for an empty ring), so the switch-allocation scan decides
/// "can anything move here?" from one contiguous load instead of
/// chasing into the slot storage every cycle.
class FlitRing {
 public:
  static constexpr std::uint64_t kNeverReady =
      ~static_cast<std::uint64_t>(0);

  void reserve_pow2(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Ready cycle of the head flit; kNeverReady when empty.
  [[nodiscard]] std::uint64_t head_ready() const { return head_ready_; }

  [[nodiscard]] Flit& front() { return slots_[head_]; }

  void pop_front() {
    head_ = (head_ + 1) & (slots_.size() - 1);
    --size_;
    head_ready_ = size_ == 0 ? kNeverReady : slots_[head_].ready_cycle;
  }

  void push_back(const Flit& flit) {
    if (size_ == slots_.size()) grow();
    slots_[(head_ + size_) & (slots_.size() - 1)] = flit;
    if (size_ == 0) head_ready_ = flit.ready_cycle;
    ++size_;
  }

  /// Appends a copy of `flit` with a different ready cycle, writing the
  /// tail slot directly (the forwarding hot path).
  void push_back_rescheduled(const Flit& flit, std::uint64_t ready_cycle) {
    if (size_ == slots_.size()) {
      // `flit` may alias this ring's storage (self-loop link): copy
      // before grow() reallocates the slots.
      const Flit copy = flit;
      grow();
      push_back_rescheduled(copy, ready_cycle);
      return;
    }
    Flit& slot = slots_[(head_ + size_) & (slots_.size() - 1)];
    slot = flit;
    slot.ready_cycle = ready_cycle;
    if (size_ == 0) head_ready_ = ready_cycle;
    ++size_;
  }

  /// Destroys every queued flit (a fault activation killed the buffer).
  void clear() {
    head_ = 0;
    size_ = 0;
    head_ready_ = kNeverReady;
  }

 private:
  void grow() {
    std::vector<Flit> bigger(slots_.empty() ? 16 : slots_.size() * 2);
    for (std::size_t i = 0; i < size_; ++i) {
      bigger[i] = slots_[(head_ + i) & (slots_.size() - 1)];
    }
    head_ = 0;
    slots_.swap(bigger);
  }

  std::vector<Flit> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t head_ready_ = kNeverReady;
};

constexpr std::uint32_t kNoHop = 0xFFFFFFFFu;
constexpr std::uint32_t kFailedHop = 0xFFFFFFFEu;

/// Precomputed (router, dst_router) -> first-hop table. Routing
/// failures are recorded once here and surfaced as a structured
/// wi::Status the first time a flit actually needs the failed entry —
/// matching the lazy cache's behaviour without re-invoking the routing
/// function per flit.
struct NextHop {
  std::uint32_t link = kNoHop;       ///< link index
  std::uint32_t out_index = kNoHop;  ///< local output port on the router
};

struct NextHopTable {
  std::size_t routers = 0;
  std::vector<NextHop> hops;  ///< [at*routers + dst], one 8-byte load
  std::unordered_map<std::size_t, Status> failures;
};

NextHopTable build_next_hop_table(const Topology& topology,
                                  const Routing& routing,
                                  const std::vector<bool>& dst_used) {
  const std::size_t routers = topology.router_count();
  NextHopTable table;
  table.routers = routers;
  table.hops.assign(routers * routers, NextHop{});
  for (std::size_t at = 0; at < routers; ++at) {
    const auto& outs = topology.out_links(at);
    for (std::size_t dst = 0; dst < routers; ++dst) {
      if (at == dst || !dst_used[dst]) continue;
      const std::size_t key = at * routers + dst;
      Route route;
      try {
        route = routing.route(topology, at, dst);
      } catch (const StatusError& e) {
        table.hops[key].link = kFailedHop;
        table.failures.emplace(key, e.status());
        continue;
      }
      if (route.empty()) {
        table.hops[key].link = kFailedHop;
        table.failures.emplace(
            key, Status(StatusCode::kExecutionError,
                        "simulate_network: empty route for transit from "
                        "router " + std::to_string(at) + " to " +
                        std::to_string(dst)));
        continue;
      }
      const std::size_t l = route.front();
      // Bounded scan for the local output port; a next-hop link that is
      // not an out-link of this router is a routing-function bug and is
      // reported instead of running off the end of the port list.
      std::size_t oi = 0;
      while (oi < outs.size() && outs[oi] != l) ++oi;
      if (oi == outs.size()) {
        table.hops[key].link = kFailedHop;
        table.failures.emplace(
            key, Status(StatusCode::kExecutionError,
                        "simulate_network: next-hop link " +
                            std::to_string(l) + " is not an out-link of "
                            "router " + std::to_string(at)));
        continue;
      }
      table.hops[key].link = static_cast<std::uint32_t>(l);
      table.hops[key].out_index = static_cast<std::uint32_t>(oi);
    }
  }
  return table;
}

/// Recompute-on-failure reroute: rebuild the next-hop table over the
/// surviving graph. One reverse BFS per used destination (minimal hop
/// count; ties broken by out-link order, so the result is deterministic
/// and independent of how the failure set was produced). Sources with
/// no live path get kFailedHop plus a kUnreachableRoute Status — the
/// fault-mode forwarding loop drops those flits instead of throwing.
void rebuild_live_routes(const Topology& topology,
                         const std::vector<bool>& dst_used,
                         const std::vector<std::vector<std::size_t>>& in_channels,
                         const std::vector<std::uint8_t>& link_alive,
                         const std::vector<std::uint8_t>& router_alive,
                         NextHopTable& table) {
  const std::size_t routers = topology.router_count();
  std::vector<std::uint32_t> dist(routers);
  std::vector<std::uint32_t> bfs_queue(routers);
  constexpr std::uint32_t kUnset = 0xFFFFFFFFu;
  for (std::size_t dst = 0; dst < routers; ++dst) {
    if (!dst_used[dst]) continue;
    std::fill(dist.begin(), dist.end(), kUnset);
    std::size_t qhead = 0;
    std::size_t qtail = 0;
    if (router_alive[dst]) {
      dist[dst] = 0;
      bfs_queue[qtail++] = static_cast<std::uint32_t>(dst);
    }
    while (qhead < qtail) {
      const std::size_t v = bfs_queue[qhead++];
      for (const std::size_t l : in_channels[v]) {
        if (!link_alive[l]) continue;
        const std::size_t u = topology.link(l).src;
        if (!router_alive[u] || dist[u] != kUnset) continue;
        dist[u] = dist[v] + 1;
        bfs_queue[qtail++] = static_cast<std::uint32_t>(u);
      }
    }
    for (std::size_t at = 0; at < routers; ++at) {
      if (at == dst) continue;
      const std::size_t key = at * routers + dst;
      NextHop& hop = table.hops[key];
      if (!router_alive[at]) {
        // Dead sources never forward; leave a failed entry so a stale
        // lookup is caught rather than followed.
        hop.link = kFailedHop;
        table.failures[key] =
            Status(StatusCode::kUnreachableRoute,
                   "simulate_network: router " + std::to_string(at) +
                       " failed");
        continue;
      }
      if (dist[at] == kUnset) {
        hop.link = kFailedHop;
        table.failures[key] =
            Status(StatusCode::kUnreachableRoute,
                   "simulate_network: no live route from router " +
                       std::to_string(at) + " to router " +
                       std::to_string(dst) +
                       (router_alive[dst] ? " after link/router failures"
                                          : " (destination router failed)"));
        continue;
      }
      const auto& outs = topology.out_links(at);
      for (std::size_t oi = 0; oi < outs.size(); ++oi) {
        const std::size_t l = outs[oi];
        if (!link_alive[l]) continue;
        const std::size_t w = topology.link(l).dst;
        if (!router_alive[w] || dist[w] == kUnset) continue;
        if (dist[w] + 1 != dist[at]) continue;
        hop.link = static_cast<std::uint32_t>(l);
        hop.out_index = static_cast<std::uint32_t>(oi);
        break;
      }
    }
  }
}

}  // namespace

FlitSimResult simulate_network(const Topology& topology,
                               const Routing& routing,
                               const TrafficPattern& traffic,
                               double injection_rate,
                               const FlitSimConfig& config) {
  return simulate_network(topology, routing, traffic, injection_rate, config,
                          fault::FaultSchedule{});
}

FlitSimResult simulate_network(const Topology& topology,
                               const Routing& routing,
                               const TrafficPattern& traffic,
                               double injection_rate,
                               const FlitSimConfig& config,
                               const fault::FaultSchedule& faults) {
  // The event wheel bounds wake horizons by the (integer) pipeline
  // delay; a sub-cycle delay would allow same-cycle wakes, so those
  // configs stay on the cycle-stepped loop. The event core additionally
  // packs flit records into 16 bytes (inject cycle | dst << 37 |
  // measured << 63) and queue cursors into head | size << 16, which
  // caps it at 2^26 routers, 2^37 total cycles, and 2^16-1 buffer
  // depth; kAuto falls back to the legacy loop beyond those (kEvent
  // throws from the core's constructor).
  const std::uint64_t delay =
      static_cast<std::uint64_t>(config.router_delay_cycles);
  const std::uint64_t total = static_cast<std::uint64_t>(
      config.warmup_cycles + config.measure_cycles + config.drain_cycles);
  const bool event_ok =
      delay >= 1 && topology.router_count() < (std::size_t{1} << 26) &&
      total + delay < (std::uint64_t{1} << 37) &&
      config.buffer_depth < (std::size_t{1} << 16);
  switch (config.core) {
    case FlitSimCore::kLegacy:
      return detail::simulate_network_legacy(topology, routing, traffic,
                                             injection_rate, config, faults);
    case FlitSimCore::kEvent:
      if (delay < 1) {
        throw std::invalid_argument(
            "simulate_network: the event core requires "
            "router_delay_cycles >= 1");
      }
      return detail::simulate_network_event(topology, routing, traffic,
                                            injection_rate, config, faults);
    case FlitSimCore::kAuto:
      break;
  }
  if (event_ok) {
    return detail::simulate_network_event(topology, routing, traffic,
                                          injection_rate, config, faults);
  }
  return detail::simulate_network_legacy(topology, routing, traffic,
                                         injection_rate, config, faults);
}

namespace detail {

FlitSimResult simulate_network_legacy(const Topology& topology,
                                      const Routing& routing,
                                      const TrafficPattern& traffic,
                                      double injection_rate,
                                      const FlitSimConfig& config,
                                      const fault::FaultSchedule& faults) {
  const std::size_t modules = topology.module_count();
  const std::size_t routers = topology.router_count();
  const std::size_t channels = topology.link_count();
  if (traffic.modules() != modules) {
    throw std::invalid_argument("simulate_network: traffic mismatch");
  }

  // Per-destination cumulative distribution per source (flat row-major)
  // for fast sampling, plus the set of destination routers any flit can
  // ever target (only those routes are precomputed). Implicit patterns
  // skip the O(modules^2) CDF entirely and draw destinations in closed
  // form; any router may then be a destination. (This legacy oracle
  // still keeps its dense next-hop table either way — the event core is
  // the O(routers)-memory path for big meshes.)
  const bool implicit = traffic.implicit_form();
  std::vector<double> cdf;
  std::vector<bool> dst_used(routers, implicit);
  if (!implicit) {
    cdf.resize(modules * modules);
    for (std::size_t s = 0; s < modules; ++s) {
      double acc = 0.0;
      for (std::size_t d = 0; d < modules; ++d) {
        const double p = traffic.probability(s, d);
        acc += p;
        cdf[s * modules + d] = acc;
        if (p > 0.0) dst_used[topology.module_router(d)] = true;
      }
    }
    // The sampler clamps to the last module when u exceeds the row total
    // (floating-point shortfall), so its router must be routable too.
    if (modules > 0) dst_used[topology.module_router(modules - 1)] = true;
  }

  std::vector<std::size_t> module_router(modules);
  for (std::size_t d = 0; d < modules; ++d) {
    module_router[d] = topology.module_router(d);
  }

  NextHopTable next_hop = build_next_hop_table(topology, routing, dst_used);

  // Flat link -> destination-router lookup for the forwarding hot path.
  std::vector<std::uint32_t> link_dst(channels);
  for (std::size_t l = 0; l < channels; ++l) {
    link_dst[l] = static_cast<std::uint32_t>(topology.link(l).dst);
  }

  // Preallocated FIFOs in one flat array — rings[0..channels) are the
  // channel queues (bounded by the buffer depth), rings[channels + r] is
  // router r's injection queue (starts small, doubles as needed).
  std::vector<FlitRing> rings(channels + routers);
  for (std::size_t l = 0; l < channels; ++l) {
    rings[l].reserve_pow2(std::min<std::size_t>(config.buffer_depth, 1024));
  }
  for (std::size_t r = 0; r < routers; ++r) {
    rings[channels + r].reserve_pow2(16);
  }
  std::vector<std::size_t> rr_state(routers, 0);  // round-robin pointer
  // Queued-flit count per router (injection + incoming channels): lets
  // the switch-allocation loop skip idle routers in O(1).
  std::vector<std::uint32_t> occupancy(routers, 0);

  // Flat per-router input-ring list: slot 0 is the injection queue,
  // then the incoming channels in link order (the same round-robin
  // order as scanning a per-router channel list).
  std::vector<std::vector<std::size_t>> in_channels(routers);
  for (std::size_t l = 0; l < channels; ++l) {
    in_channels[topology.link(l).dst].push_back(l);
  }
  std::vector<std::uint32_t> input_ids;
  input_ids.reserve(routers + channels);
  std::vector<std::size_t> input_offset(routers + 1, 0);
  for (std::size_t r = 0; r < routers; ++r) {
    input_offset[r] = input_ids.size();
    input_ids.push_back(static_cast<std::uint32_t>(channels + r));
    for (const std::size_t l : in_channels[r]) {
      input_ids.push_back(static_cast<std::uint32_t>(l));
    }
  }
  input_offset[routers] = input_ids.size();

  // Fault-mode state. `chaos` gates every injection point: with an
  // empty schedule none of this is touched and the cycle loop below is
  // the exact legacy path (same RNG draws, same arbitration order).
  const bool chaos = !faults.events.empty();
  std::vector<std::uint8_t> link_alive;
  std::vector<std::uint8_t> router_alive;
  std::vector<bool> route_failure_seen;
  if (chaos) {
    link_alive.assign(channels, 1);
    router_alive.assign(routers, 1);
    route_failure_seen.assign(routers * routers, false);
  }
  std::size_t next_event = 0;
  constexpr std::size_t kMaxRouteFailures = 8;

  // Per-output-channel bandwidth budgets, hoisted out of the cycle loop:
  // one flat template refreshed into a scratch buffer per busy router.
  std::vector<std::size_t> budget_offset(routers + 1, 0);
  for (std::size_t r = 0; r < routers; ++r) {
    budget_offset[r + 1] = budget_offset[r] + topology.out_links(r).size();
  }
  std::vector<int> budget_template(budget_offset[routers]);
  std::size_t max_outs = 0;
  for (std::size_t r = 0; r < routers; ++r) {
    const auto& outs = topology.out_links(r);
    max_outs = std::max(max_outs, outs.size());
    for (std::size_t i = 0; i < outs.size(); ++i) {
      const int b = static_cast<int>(topology.link(outs[i]).bandwidth);
      budget_template[budget_offset[r] + i] = b < 1 ? 1 : b;
    }
  }
  std::vector<int> budget(max_outs);

  Rng rng(config.seed);
  FlitSimResult result;
  double latency_sum = 0.0;

  const std::uint64_t total_cycles = config.warmup_cycles +
                                     config.measure_cycles +
                                     config.drain_cycles;
  const std::uint64_t measure_begin = config.warmup_cycles;
  const std::uint64_t measure_end =
      config.warmup_cycles + config.measure_cycles;

  for (std::uint64_t cycle = 0; cycle < total_cycles; ++cycle) {
    const bool in_window = cycle >= measure_begin && cycle < measure_end;
    // 0. Fault activation: kill due entities, destroy their buffered
    //    flits, then recompute routes over the surviving graph.
    if (chaos && next_event < faults.events.size() &&
        faults.events[next_event].at_cycle <= cycle) {
      bool changed = false;
      const auto kill_link = [&](std::size_t l) {
        if (!link_alive[l]) return;
        link_alive[l] = 0;
        ++result.dead_links;
        // The channel ring is the input buffer the link feeds at its
        // downstream router: everything queued there dies with it.
        FlitRing& ring = rings[l];
        const std::size_t owner = link_dst[l];
        while (!ring.empty()) {
          if (ring.front().measured) ++result.dropped;
          ring.pop_front();
          --occupancy[owner];
        }
        changed = true;
      };
      while (next_event < faults.events.size() &&
             faults.events[next_event].at_cycle <= cycle) {
        const fault::FaultEvent& event = faults.events[next_event++];
        if (event.kind == fault::FaultEvent::Kind::kLink) {
          if (event.index < channels) kill_link(event.index);
          continue;
        }
        const std::size_t r = event.index;
        if (r >= routers || !router_alive[r]) continue;
        router_alive[r] = 0;
        ++result.dead_routers;
        // Out-link queues buffer at the downstream routers and drain
        // normally; the links themselves carry nothing further.
        for (const std::size_t l : topology.out_links(r)) {
          if (link_alive[l]) {
            link_alive[l] = 0;
            ++result.dead_links;
          }
        }
        for (const std::size_t l : in_channels[r]) kill_link(l);
        FlitRing& inject_ring = rings[channels + r];
        while (!inject_ring.empty()) {
          if (inject_ring.front().measured) ++result.dropped;
          inject_ring.pop_front();
          --occupancy[r];
        }
        changed = true;
      }
      if (changed) {
        rebuild_live_routes(topology, dst_used, in_channels, link_alive,
                            router_alive, next_hop);
      }
    }
    // 1. Injection: Bernoulli approximation of Poisson arrivals
    //    (injection_rate < 1 per module per cycle).
    if (cycle < measure_end) {
      for (std::size_t m = 0; m < modules; ++m) {
        if (!rng.bernoulli(injection_rate)) continue;
        std::size_t d;
        if (implicit) {
          d = traffic.sample(rng, m);
        } else {
          const double u = rng.uniform();
          const double* row = &cdf[m * modules];
          d = static_cast<std::size_t>(
              std::lower_bound(row, row + modules, u) - row);
          // Defensive clamp: float shortfall in the row total can push u
          // past the last CDF entry (construction-time validation keeps
          // genuinely bad matrices out; this guards roundoff only).
          if (d >= modules) d = modules - 1;
        }
        if (chaos && !router_alive[module_router[m]]) {
          // Dead source router: the module offered a packet the network
          // never accepted. Both RNG draws above still happened, so the
          // traffic sequence matches the fault-free run.
          if (in_window) {
            ++result.injected;
            ++result.dropped;
          }
          continue;
        }
        Flit flit;
        flit.dst_module = static_cast<std::uint32_t>(d);
        flit.dst_router = static_cast<std::uint32_t>(module_router[d]);
        flit.inject_cycle = cycle;
        flit.measured = in_window;
        flit.ready_cycle = cycle;
        if (flit.measured) ++result.injected;
        const std::size_t r = module_router[m];
        rings[channels + r].push_back(flit);
        ++occupancy[r];
      }
    }

    // 2. Switch allocation per router: each output channel (and the
    //    ejection port) accepts up to `bandwidth` flits per cycle,
    //    round-robin over the input queues (injection + incoming
    //    channels).
    for (std::size_t r = 0; r < routers; ++r) {
      // rr_state is kept reduced mod n_inputs, so the wrap-arounds below
      // are conditional subtractions instead of hardware divisions.
      const std::size_t input_base = input_offset[r];
      const std::size_t n_inputs = input_offset[r + 1] - input_base;
      if (occupancy[r] == 0) {
        // Idle router: nothing can move, only the round-robin pointer
        // advances (exactly as it would after scanning empty queues).
        const std::size_t bumped = rr_state[r] + 1;
        rr_state[r] = bumped == n_inputs ? 0 : bumped;
        continue;
      }
      // Budget per output channel this cycle.
      const std::size_t n_outs = budget_offset[r + 1] - budget_offset[r];
      if (n_outs > 0) {
        std::memcpy(budget.data(), &budget_template[budget_offset[r]],
                    n_outs * sizeof(int));
      }
      int eject_budget = 1;

      // Input queue list: index 0 = injection, then incoming channels.
      const std::size_t start = rr_state[r];
      for (std::size_t k = 0; k < n_inputs; ++k) {
        std::size_t qi = start + k;
        if (qi >= n_inputs) qi -= n_inputs;
        FlitRing& q = rings[input_ids[input_base + qi]];
        // Move as many head flits as outputs allow (one per output).
        // head_ready() folds "empty" and "head still in the pipeline"
        // into one cheap test.
        while (q.head_ready() <= cycle) {
          Flit& flit = q.front();
          if (flit.dst_router == r) {
            if (eject_budget <= 0) break;
            --eject_budget;
            // Delivered.
            if (flit.measured) {
              ++result.delivered;
              latency_sum += static_cast<double>(
                  cycle + static_cast<std::uint64_t>(
                              config.router_delay_cycles) -
                  flit.inject_cycle);
            }
            q.pop_front();
            --occupancy[r];
            continue;
          }
          const std::size_t key = r * routers + flit.dst_router;
          const NextHop hop = next_hop.hops[key];
          if (hop.link >= kFailedHop) {
            if (chaos && hop.link == kFailedHop) {
              // Fault mode: the destination is cut off. Drop the flit
              // and surface the Status as result data, never a throw.
              if (flit.measured) ++result.unreachable;
              if (!route_failure_seen[key]) {
                route_failure_seen[key] = true;
                if (result.route_failures.size() < kMaxRouteFailures) {
                  result.route_failures.push_back(next_hop.failures.at(key));
                }
              }
              q.pop_front();
              --occupancy[r];
              continue;
            }
            // Surfaced once per simulation; kNoHop means the routing
            // table missed a reachable pair, which is a bug here.
            if (hop.link == kFailedHop) {
              throw StatusError(next_hop.failures.at(key));
            }
            throw StatusError(Status(
                StatusCode::kExecutionError,
                "simulate_network: no precomputed next hop for router " +
                    std::to_string(r) + " -> " +
                    std::to_string(flit.dst_router)));
          }
          if (budget[hop.out_index] <= 0) break;
          FlitRing& dst_queue = rings[hop.link];
          if (dst_queue.size() >= config.buffer_depth) break;
          --budget[hop.out_index];
          // A hop costs router_delay cycles total (pipeline + transfer),
          // matching the analytic model's per-hop latency.
          dst_queue.push_back_rescheduled(
              flit,
              cycle + static_cast<std::uint64_t>(config.router_delay_cycles));
          ++occupancy[link_dst[hop.link]];
          q.pop_front();
          --occupancy[r];
        }
      }
      const std::size_t bumped = rr_state[r] + 1;
      rr_state[r] = bumped == n_inputs ? 0 : bumped;
    }
  }

  result.mean_latency_cycles =
      result.delivered == 0 ? 0.0
                            : latency_sum / static_cast<double>(result.delivered);
  result.delivered_per_cycle =
      static_cast<double>(result.delivered) /
      (static_cast<double>(config.measure_cycles) *
       static_cast<double>(modules));
  // Stability: everything measured was eventually resolved (delivered,
  // or — in fault mode — terminally dropped; losses are accounted, not
  // stuck in a queue).
  result.stable = result.delivered + result.dropped + result.unreachable >=
                  result.injected * 995 / 1000;
  return result;
}

}  // namespace detail

}  // namespace wi::noc

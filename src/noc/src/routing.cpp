#include "wi/noc/routing.hpp"

#include <algorithm>
#include <queue>
#include <string>

#include "wi/common/status.hpp"

namespace wi::noc {

std::size_t Routing::first_hop(const Topology& topology,
                               std::size_t src_router,
                               std::size_t dst_router) const {
  const Route r = route(topology, src_router, dst_router);
  if (r.empty()) {
    throw StatusError(Status(
        StatusCode::kUnreachableRoute,
        "Routing::first_hop: empty route from router " +
            std::to_string(src_router) + " to " +
            std::to_string(dst_router) + " in '" + topology.name() + "'"));
  }
  return r.front();
}

Route DimensionOrderRouting::route(const Topology& topology,
                                   std::size_t src_router,
                                   std::size_t dst_router) const {
  Route route;
  Coord at = topology.coord(src_router);
  const Coord target = topology.coord(dst_router);
  std::size_t current = src_router;
  auto step = [&](int dx, int dy, int dz) {
    const std::size_t next =
        topology.router_at(at.x + dx, at.y + dy, at.z + dz);
    const std::size_t link = topology.find_link(current, next);
    if (link == Topology::npos) {
      throw StatusError(Status(
          StatusCode::kUnreachableRoute,
          "DimensionOrderRouting: no mesh link " + std::to_string(current) +
              " -> " + std::to_string(next) + " in '" + topology.name() +
              "' (irregular topologies need ShortestPathRouting)"));
    }
    route.push_back(link);
    current = next;
    at = topology.coord(next);
  };
  while (at.x != target.x) step(at.x < target.x ? 1 : -1, 0, 0);
  while (at.y != target.y) step(0, at.y < target.y ? 1 : -1, 0);
  while (at.z != target.z) step(0, 0, at.z < target.z ? 1 : -1);
  return route;
}

std::size_t DimensionOrderRouting::first_hop(const Topology& topology,
                                             std::size_t src_router,
                                             std::size_t dst_router) const {
  if (src_router == dst_router) {
    throw StatusError(Status(
        StatusCode::kUnreachableRoute,
        "Routing::first_hop: empty route from router " +
            std::to_string(src_router) + " to " +
            std::to_string(dst_router) + " in '" + topology.name() + "'"));
  }
  const Coord at = topology.coord(src_router);
  const Coord target = topology.coord(dst_router);
  int dx = 0;
  int dy = 0;
  int dz = 0;
  if (at.x != target.x) {
    dx = at.x < target.x ? 1 : -1;
  } else if (at.y != target.y) {
    dy = at.y < target.y ? 1 : -1;
  } else {
    dz = at.z < target.z ? 1 : -1;
  }
  const std::size_t next =
      topology.router_at(at.x + dx, at.y + dy, at.z + dz);
  const std::size_t link = topology.find_link(src_router, next);
  if (link == Topology::npos) {
    throw StatusError(Status(
        StatusCode::kUnreachableRoute,
        "DimensionOrderRouting: no mesh link " + std::to_string(src_router) +
            " -> " + std::to_string(next) + " in '" + topology.name() +
            "' (irregular topologies need ShortestPathRouting)"));
  }
  return link;
}

Route ShortestPathRouting::route(const Topology& topology,
                                 std::size_t src_router,
                                 std::size_t dst_router) const {
  if (src_router == dst_router) return {};
  const std::size_t n = topology.router_count();
  std::vector<std::size_t> parent_link(n, Topology::npos);
  std::vector<char> visited(n, 0);
  std::queue<std::size_t> queue;
  visited[src_router] = 1;
  queue.push(src_router);
  while (!queue.empty()) {
    const std::size_t u = queue.front();
    queue.pop();
    if (u == dst_router) break;
    // Ties broken by link index: routes are independent of link
    // bandwidths, so technology sweeps compare like against like.
    for (const std::size_t l : topology.out_links(u)) {
      const std::size_t v = topology.link(l).dst;
      if (!visited[v]) {
        visited[v] = 1;
        parent_link[v] = l;
        queue.push(v);
      }
    }
  }
  if (!visited[dst_router]) {
    throw StatusError(Status(
        StatusCode::kUnreachableRoute,
        "ShortestPathRouting: router " + std::to_string(dst_router) +
            " unreachable from " + std::to_string(src_router) + " in '" +
            topology.name() + "'"));
  }
  Route route;
  std::size_t at = dst_router;
  while (at != src_router) {
    const std::size_t l = parent_link[at];
    route.push_back(l);
    at = topology.link(l).src;
  }
  std::reverse(route.begin(), route.end());
  return route;
}

double average_hop_count(const Topology& topology, const Routing& routing) {
  const std::size_t modules = topology.module_count();
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t s = 0; s < modules; ++s) {
    for (std::size_t d = 0; d < modules; ++d) {
      if (s == d) continue;
      total += static_cast<double>(
          routing
              .route(topology, topology.module_router(s),
                     topology.module_router(d))
              .size());
      ++pairs;
    }
  }
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

std::size_t diameter(const Topology& topology, const Routing& routing) {
  const std::size_t modules = topology.module_count();
  std::size_t worst = 0;
  for (std::size_t s = 0; s < modules; ++s) {
    for (std::size_t d = 0; d < modules; ++d) {
      if (s == d) continue;
      worst = std::max(worst,
                       routing
                           .route(topology, topology.module_router(s),
                                  topology.module_router(d))
                           .size());
    }
  }
  return worst;
}

}  // namespace wi::noc

#include "wi/noc/traffic.hpp"

#include <stdexcept>

namespace wi::noc {

TrafficPattern::TrafficPattern(std::vector<double> matrix,
                               std::size_t modules)
    : modules_(modules), matrix_(std::move(matrix)) {
  if (modules_ == 0 || matrix_.size() != modules_ * modules_) {
    throw std::invalid_argument("TrafficPattern: bad matrix size");
  }
  for (std::size_t s = 0; s < modules_; ++s) {
    double row = 0.0;
    for (std::size_t d = 0; d < modules_; ++d) {
      if (matrix_[s * modules_ + d] < 0.0) {
        throw std::invalid_argument("TrafficPattern: negative probability");
      }
      row += matrix_[s * modules_ + d];
    }
    if (row <= 0.0) {
      throw std::invalid_argument("TrafficPattern: empty row");
    }
    for (std::size_t d = 0; d < modules_; ++d) {
      matrix_[s * modules_ + d] /= row;
    }
  }
}

TrafficPattern TrafficPattern::uniform(std::size_t modules) {
  if (modules < 2) throw std::invalid_argument("uniform: modules >= 2");
  std::vector<double> m(modules * modules, 1.0);
  for (std::size_t i = 0; i < modules; ++i) m[i * modules + i] = 0.0;
  return TrafficPattern(std::move(m), modules);
}

TrafficPattern TrafficPattern::transpose(std::size_t modules) {
  if (modules < 2) throw std::invalid_argument("transpose: modules >= 2");
  std::vector<double> m(modules * modules, 0.0);
  for (std::size_t i = 0; i < modules; ++i) {
    m[i * modules + (i + modules / 2) % modules] = 1.0;
  }
  return TrafficPattern(std::move(m), modules);
}

TrafficPattern TrafficPattern::bit_complement(std::size_t modules) {
  if (modules < 2 || (modules & (modules - 1)) != 0) {
    throw std::invalid_argument("bit_complement: modules must be 2^k");
  }
  std::vector<double> m(modules * modules, 0.0);
  for (std::size_t i = 0; i < modules; ++i) {
    m[i * modules + (modules - 1 - i)] = 1.0;
  }
  return TrafficPattern(std::move(m), modules);
}

TrafficPattern TrafficPattern::hotspot(std::size_t modules,
                                       std::size_t hotspot_module,
                                       double hotspot_fraction) {
  if (hotspot_module >= modules) {
    throw std::invalid_argument("hotspot: module out of range");
  }
  if (hotspot_fraction < 0.0 || hotspot_fraction > 1.0) {
    throw std::invalid_argument("hotspot: fraction in [0,1]");
  }
  std::vector<double> m(modules * modules, 0.0);
  for (std::size_t s = 0; s < modules; ++s) {
    for (std::size_t d = 0; d < modules; ++d) {
      if (s == d) continue;
      double p = (1.0 - hotspot_fraction) /
                 static_cast<double>(modules - 1);
      if (d == hotspot_module) p += hotspot_fraction;
      m[s * modules + d] = p;
    }
  }
  return TrafficPattern(std::move(m), modules);
}

}  // namespace wi::noc

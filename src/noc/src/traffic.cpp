#include "wi/noc/traffic.hpp"

#include <cmath>
#include <string>

#include "wi/common/status.hpp"

namespace wi::noc {
namespace {

[[noreturn]] void fail(std::string message) {
  throw StatusError(
      Status(StatusCode::kInvalidSpec, std::move(message)));
}

/// Validation for user-supplied matrices: finite non-negative entries,
/// rows summing to 1 within tolerance. Factory-built matrices bypass
/// this (their rows intentionally sum to other totals before the shared
/// normalisation, e.g. uniform's raw 1.0 entries).
void check_matrix(const std::vector<double>& matrix, std::size_t modules) {
  if (modules == 0 || matrix.size() != modules * modules) {
    fail("TrafficPattern: bad matrix size");
  }
  constexpr double kRowSumTolerance = 1e-6;
  for (std::size_t s = 0; s < modules; ++s) {
    double row = 0.0;
    for (std::size_t d = 0; d < modules; ++d) {
      const double p = matrix[s * modules + d];
      if (std::isnan(p) || std::isinf(p)) {
        fail("TrafficPattern: non-finite probability in row " +
             std::to_string(s));
      }
      if (p < 0.0) {
        fail("TrafficPattern: negative probability in row " +
             std::to_string(s));
      }
      row += p;
    }
    if (std::abs(row - 1.0) > kRowSumTolerance) {
      fail("TrafficPattern: row " + std::to_string(s) + " sums to " +
           std::to_string(row) + ", expected 1 within tolerance");
    }
  }
}

void check_mesh_extents(std::size_t modules, std::size_t kx, std::size_t ky,
                        std::size_t kz) {
  if (kx == 0 || ky == 0 || kz == 0 || kx * ky * kz != modules) {
    fail("tornado: extents must multiply to modules");
  }
  if (kx < 3 && ky < 3 && kz < 3) {
    // Every per-dimension shift (k-1)/2 is zero below extent 3, so the
    // permutation would map each module to itself.
    fail("tornado: at least one extent must be >= 3");
  }
}

void check_hotspot(std::size_t modules, std::size_t hotspot_module,
                   double hotspot_fraction) {
  if (modules < 2) fail("hotspot: modules >= 2");
  if (hotspot_module >= modules) fail("hotspot: module out of range");
  if (!(hotspot_fraction >= 0.0 && hotspot_fraction <= 1.0)) {
    fail("hotspot: fraction in [0,1]");
  }
}

/// ceil(fraction * 2^53), saturated to [0, 2^53]: the integer threshold
/// for which `raw() >> 11 < thresh` matches `uniform() < fraction`
/// exactly (2^53 scaling is a pure exponent shift, no rounding).
std::uint64_t fraction_threshold(double fraction) {
  constexpr double kTwo53 = 9007199254740992.0;  // 2^53
  if (fraction <= 0.0) return 0;
  if (fraction >= 1.0) return static_cast<std::uint64_t>(kTwo53);
  return static_cast<std::uint64_t>(std::ceil(fraction * kTwo53));
}

}  // namespace

TrafficPattern::TrafficPattern(std::vector<double> matrix,
                               std::size_t modules)
    : TrafficPattern(Unchecked{},
                     (check_matrix(matrix, modules), std::move(matrix)),
                     modules) {}

TrafficPattern::TrafficPattern(Unchecked, std::vector<double> matrix,
                               std::size_t modules)
    : modules_(modules), matrix_(std::move(matrix)) {
  if (modules_ == 0 || matrix_.size() != modules_ * modules_) {
    fail("TrafficPattern: bad matrix size");
  }
  for (std::size_t s = 0; s < modules_; ++s) {
    double row = 0.0;
    for (std::size_t d = 0; d < modules_; ++d) {
      if (matrix_[s * modules_ + d] < 0.0) {
        fail("TrafficPattern: negative probability");
      }
      row += matrix_[s * modules_ + d];
    }
    if (row <= 0.0) {
      fail("TrafficPattern: empty row");
    }
    for (std::size_t d = 0; d < modules_; ++d) {
      matrix_[s * modules_ + d] /= row;
    }
  }
}

TrafficPattern::TrafficPattern(TrafficPatternKind kind, std::size_t modules)
    : kind_(kind), modules_(modules) {}

TrafficPattern TrafficPattern::uniform(std::size_t modules) {
  if (modules < 2) fail("uniform: modules >= 2");
  std::vector<double> m(modules * modules, 1.0);
  for (std::size_t i = 0; i < modules; ++i) m[i * modules + i] = 0.0;
  return TrafficPattern(Unchecked{}, std::move(m), modules);
}

TrafficPattern TrafficPattern::transpose(std::size_t modules) {
  if (modules < 2) fail("transpose: modules >= 2");
  std::vector<double> m(modules * modules, 0.0);
  for (std::size_t i = 0; i < modules; ++i) {
    m[i * modules + (i + modules / 2) % modules] = 1.0;
  }
  return TrafficPattern(Unchecked{}, std::move(m), modules);
}

TrafficPattern TrafficPattern::bit_complement(std::size_t modules) {
  if (modules < 2 || (modules & (modules - 1)) != 0) {
    fail("bit_complement: modules must be 2^k");
  }
  std::vector<double> m(modules * modules, 0.0);
  for (std::size_t i = 0; i < modules; ++i) {
    m[i * modules + (modules - 1 - i)] = 1.0;
  }
  return TrafficPattern(Unchecked{}, std::move(m), modules);
}

TrafficPattern TrafficPattern::hotspot(std::size_t modules,
                                       std::size_t hotspot_module,
                                       double hotspot_fraction) {
  check_hotspot(modules, hotspot_module, hotspot_fraction);
  std::vector<double> m(modules * modules, 0.0);
  for (std::size_t s = 0; s < modules; ++s) {
    for (std::size_t d = 0; d < modules; ++d) {
      if (s == d) continue;
      double p = (1.0 - hotspot_fraction) /
                 static_cast<double>(modules - 1);
      if (d == hotspot_module) p += hotspot_fraction;
      m[s * modules + d] = p;
    }
  }
  return TrafficPattern(Unchecked{}, std::move(m), modules);
}

TrafficPattern TrafficPattern::tornado(std::size_t modules, std::size_t kx,
                                       std::size_t ky, std::size_t kz) {
  check_mesh_extents(modules, kx, ky, kz);
  TrafficPattern shape(TrafficPatternKind::kTornado, modules);
  shape.kx_ = kx;
  shape.ky_ = ky;
  shape.kz_ = kz;
  std::vector<double> m(modules * modules, 0.0);
  for (std::size_t i = 0; i < modules; ++i) {
    m[i * modules + shape.tornado_target(i)] = 1.0;
  }
  return TrafficPattern(Unchecked{}, std::move(m), modules);
}

TrafficPattern TrafficPattern::implicit_uniform(std::size_t modules) {
  if (modules < 2) fail("uniform: modules >= 2");
  return TrafficPattern(TrafficPatternKind::kUniform, modules);
}

TrafficPattern TrafficPattern::implicit_transpose(std::size_t modules) {
  if (modules < 2) fail("transpose: modules >= 2");
  return TrafficPattern(TrafficPatternKind::kTranspose, modules);
}

TrafficPattern TrafficPattern::implicit_bit_complement(std::size_t modules) {
  if (modules < 2 || (modules & (modules - 1)) != 0) {
    fail("bit_complement: modules must be 2^k");
  }
  return TrafficPattern(TrafficPatternKind::kBitComplement, modules);
}

TrafficPattern TrafficPattern::implicit_hotspot(std::size_t modules,
                                                std::size_t hotspot_module,
                                                double hotspot_fraction) {
  check_hotspot(modules, hotspot_module, hotspot_fraction);
  TrafficPattern p(TrafficPatternKind::kHotspot, modules);
  p.hot_module_ = hotspot_module;
  p.hot_fraction_ = hotspot_fraction;
  p.hot_thresh_ = fraction_threshold(hotspot_fraction);
  return p;
}

TrafficPattern TrafficPattern::implicit_tornado(std::size_t modules,
                                                std::size_t kx,
                                                std::size_t ky,
                                                std::size_t kz) {
  check_mesh_extents(modules, kx, ky, kz);
  TrafficPattern p(TrafficPatternKind::kTornado, modules);
  p.kx_ = kx;
  p.ky_ = ky;
  p.kz_ = kz;
  return p;
}

std::size_t TrafficPattern::permutation_target(std::size_t src) const {
  switch (kind_) {
    case TrafficPatternKind::kTranspose:
      return (src + modules_ / 2) % modules_;
    case TrafficPatternKind::kBitComplement:
      return modules_ - 1 - src;
    case TrafficPatternKind::kTornado:
      return tornado_target(src);
    default:
      fail("permutation_target: not a permutation pattern");
  }
}

double TrafficPattern::analytic_probability(std::size_t src,
                                            std::size_t dst) const {
  if (src == dst) return 0.0;
  const double fan = static_cast<double>(modules_ - 1);
  switch (kind_) {
    case TrafficPatternKind::kUniform:
      return 1.0 / fan;
    case TrafficPatternKind::kTranspose:
      return dst == (src + modules_ / 2) % modules_ ? 1.0 : 0.0;
    case TrafficPatternKind::kBitComplement:
      return dst == modules_ - 1 - src ? 1.0 : 0.0;
    case TrafficPatternKind::kTornado:
      return dst == tornado_target(src) ? 1.0 : 0.0;
    case TrafficPatternKind::kHotspot: {
      // The dense twin's hot row holds (1-f) spread uniformly, which
      // its row normalisation rescales to 1/(M-1) — the hot module's
      // own traffic is plain uniform.
      if (src == hot_module_) return 1.0 / fan;
      double p = (1.0 - hot_fraction_) / fan;
      if (dst == hot_module_) p += hot_fraction_;
      return p;
    }
    case TrafficPatternKind::kDense:
      break;
  }
  return 0.0;
}

void TrafficPattern::dense_sample_unsupported() {
  fail("TrafficPattern::sample: dense patterns sample via their CDF");
}

}  // namespace wi::noc

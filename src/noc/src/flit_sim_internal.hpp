#pragma once
/// \file flit_sim_internal.hpp
/// \brief Internal seam between the two simulate_network cores.
///
/// The public simulate_network() overloads dispatch between the legacy
/// cycle-stepped loop (flit_sim.cpp) and the event-wheel core
/// (flit_sim_event.cpp) based on FlitSimConfig::core. Both entry points
/// take identical arguments and are bit-identical for router delays
/// >= 1 cycle; the legacy core additionally handles zero-delay configs
/// and serves as the differential-testing oracle.

#include "wi/noc/flit_sim.hpp"

namespace wi::noc::detail {

/// Original cycle-stepped implementation (visits every router every
/// cycle). Handles any router delay, including < 1.
[[nodiscard]] FlitSimResult simulate_network_legacy(
    const Topology& topology, const Routing& routing,
    const TrafficPattern& traffic, double injection_rate,
    const FlitSimConfig& config, const fault::FaultSchedule& faults);

/// Event-wheel + SoA core with optional partitioned-parallel execution.
/// Requires static_cast<uint64_t>(config.router_delay_cycles) >= 1.
[[nodiscard]] FlitSimResult simulate_network_event(
    const Topology& topology, const Routing& routing,
    const TrafficPattern& traffic, double injection_rate,
    const FlitSimConfig& config, const fault::FaultSchedule& faults);

}  // namespace wi::noc::detail

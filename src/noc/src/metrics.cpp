#include "wi/noc/metrics.hpp"

#include <cmath>
#include <vector>

namespace wi::noc {

TopologyMetrics compute_metrics(const Topology& topology,
                                const Routing& routing) {
  TopologyMetrics metrics;
  metrics.average_hops = average_hop_count(topology, routing);
  metrics.diameter_hops = diameter(topology, routing);
  metrics.bisection_bandwidth = topology.bisection_bandwidth();
  metrics.total_wire_mm = topology.total_wire_length_mm();
  metrics.router_count = topology.router_count();
  metrics.link_count = topology.link_count();
  return metrics;
}

double total_router_crossbar_area(const Topology& topology) {
  std::vector<double> ports(topology.router_count(), 0.0);
  for (const auto& link : topology.links()) {
    const double lanes = std::ceil(link.bandwidth);
    ports[link.src] += lanes;  // output ports
    ports[link.dst] += lanes;  // input ports
  }
  for (std::size_t m = 0; m < topology.module_count(); ++m) {
    ports[topology.module_router(m)] += 2.0;  // inject + eject
  }
  double area = 0.0;
  for (const double p : ports) area += p * p;
  return area;
}

}  // namespace wi::noc

#include "wi/noc/mesh_grid.hpp"

namespace wi::noc {

std::optional<MeshGrid> MeshGrid::analyze(const Topology& topology) {
  const std::size_t kx = topology.kx();
  const std::size_t ky = topology.ky();
  const std::size_t kz = topology.kz();
  const std::size_t routers = topology.router_count();
  if (routers < 2 || kx == 0 || ky == 0 || kz == 0) return std::nullopt;
  if (kx * ky * kz != routers) return std::nullopt;
  // Coordinates are packed 10 bits per dimension.
  if (kx > 1023 || ky > 1023 || kz > 1023) return std::nullopt;
  // Dense port tables (and this grid) address ports as bytes; every
  // mesh router has at most 6 mesh ports, but reject exotic manual
  // builds outright.
  constexpr std::size_t kMaxPorts = 254;

  MeshGrid grid;
  grid.packed_.resize(routers);
  grid.dir_port_.assign(routers * 6, 0xFF);

  for (std::size_t r = 0; r < routers; ++r) {
    // Canonical mesh indexing: r == (z*ky + y)*kx + x.
    const std::size_t x = r % kx;
    const std::size_t y = (r / kx) % ky;
    const std::size_t z = r / (kx * ky);
    const Coord& c = topology.coord(r);
    if (c.x < 0 || c.y < 0 || c.z < 0) return std::nullopt;
    if (static_cast<std::size_t>(c.x) != x ||
        static_cast<std::size_t>(c.y) != y ||
        static_cast<std::size_t>(c.z) != z) {
      return std::nullopt;
    }
    grid.packed_[r] = static_cast<std::uint32_t>(x) |
                      (static_cast<std::uint32_t>(y) << 10) |
                      (static_cast<std::uint32_t>(z) << 20);

    const auto& out = topology.out_links(r);
    if (out.size() > kMaxPorts) return std::nullopt;
    for (std::size_t port = 0; port < out.size(); ++port) {
      const Link& link = topology.link(out[port]);
      const std::size_t dst = link.dst;
      if (link.src != r || dst >= routers || dst == r) return std::nullopt;
      // Classify the link as one of the six axis directions.
      std::size_t dir;
      if (dst == r + 1 && x + 1 < kx) {
        dir = kPlusX;
      } else if (r == dst + 1 && x > 0) {
        dir = kMinusX;
      } else if (dst == r + kx && y + 1 < ky) {
        dir = kPlusY;
      } else if (r == dst + kx && y > 0) {
        dir = kMinusY;
      } else if (dst == r + kx * ky && z + 1 < kz) {
        dir = kPlusZ;
      } else if (r == dst + kx * ky && z > 0) {
        dir = kMinusZ;
      } else {
        return std::nullopt;  // long-range / diagonal link: not a mesh
      }
      // Exactly one link per (router, direction): a duplicate would
      // make the computed port ambiguous where find_link takes the
      // first scan hit.
      if (grid.dir_port_[r * 6 + dir] != 0xFF) return std::nullopt;
      grid.dir_port_[r * 6 + dir] = static_cast<std::uint8_t>(port);
    }

    // Full mesh: every in-bounds neighbour must be linked.
    if ((x + 1 < kx) != (grid.dir_port_[r * 6 + kPlusX] != 0xFF) ||
        (x > 0) != (grid.dir_port_[r * 6 + kMinusX] != 0xFF) ||
        (y + 1 < ky) != (grid.dir_port_[r * 6 + kPlusY] != 0xFF) ||
        (y > 0) != (grid.dir_port_[r * 6 + kMinusY] != 0xFF) ||
        (z + 1 < kz) != (grid.dir_port_[r * 6 + kPlusZ] != 0xFF) ||
        (z > 0) != (grid.dir_port_[r * 6 + kMinusZ] != 0xFF)) {
      return std::nullopt;
    }
  }
  return grid;
}

}  // namespace wi::noc

#include "wi/noc/topology.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wi::noc {

Topology::Topology(std::string name, std::size_t kx, std::size_t ky,
                   std::size_t kz)
    : name_(std::move(name)), kx_(kx), ky_(ky), kz_(kz) {
  if (kx == 0 || ky == 0 || kz == 0) {
    throw std::invalid_argument("Topology: extents must be >= 1");
  }
}

std::size_t Topology::add_router(Coord coord) {
  coords_.push_back(coord);
  out_links_.emplace_back();
  return coords_.size() - 1;
}

void Topology::add_link(Link link) {
  if (link.src >= router_count() || link.dst >= router_count()) {
    throw std::out_of_range("Topology::add_link: router out of range");
  }
  if (link.src == link.dst) {
    throw std::invalid_argument("Topology::add_link: self loop");
  }
  out_links_[link.src].push_back(links_.size());
  links_.push_back(link);
}

std::size_t Topology::attach_module(std::size_t router) {
  if (router >= router_count()) {
    throw std::out_of_range("Topology::attach_module: router out of range");
  }
  module_router_.push_back(router);
  return module_router_.size() - 1;
}

std::size_t Topology::find_link(std::size_t src, std::size_t dst) const {
  for (const std::size_t l : out_links_[src]) {
    if (links_[l].dst == dst) return l;
  }
  return npos;
}

std::size_t Topology::router_at(int x, int y, int z) const {
  if (x < 0 || y < 0 || z < 0 || static_cast<std::size_t>(x) >= kx_ ||
      static_cast<std::size_t>(y) >= ky_ ||
      static_cast<std::size_t>(z) >= kz_) {
    throw std::out_of_range("Topology::router_at: coordinate out of range");
  }
  return (static_cast<std::size_t>(z) * ky_ + static_cast<std::size_t>(y)) *
             kx_ +
         static_cast<std::size_t>(x);
}

Topology Topology::build_mesh(std::string name, std::size_t kx,
                              std::size_t ky, std::size_t kz,
                              std::size_t concentration, double xy_pitch_mm,
                              double z_pitch_mm) {
  Topology topo(std::move(name), kx, ky, kz);
  for (std::size_t z = 0; z < kz; ++z) {
    for (std::size_t y = 0; y < ky; ++y) {
      for (std::size_t x = 0; x < kx; ++x) {
        topo.add_router({static_cast<int>(x), static_cast<int>(y),
                         static_cast<int>(z)});
      }
    }
  }
  auto connect = [&](std::size_t a, std::size_t b, double len, bool vert) {
    topo.add_link({a, b, 1.0, len, vert});
    topo.add_link({b, a, 1.0, len, vert});
  };
  for (std::size_t z = 0; z < kz; ++z) {
    for (std::size_t y = 0; y < ky; ++y) {
      for (std::size_t x = 0; x < kx; ++x) {
        const std::size_t r = topo.router_at(
            static_cast<int>(x), static_cast<int>(y), static_cast<int>(z));
        if (x + 1 < kx) {
          connect(r, topo.router_at(static_cast<int>(x + 1),
                                    static_cast<int>(y), static_cast<int>(z)),
                  xy_pitch_mm, false);
        }
        if (y + 1 < ky) {
          connect(r, topo.router_at(static_cast<int>(x),
                                    static_cast<int>(y + 1),
                                    static_cast<int>(z)),
                  xy_pitch_mm, false);
        }
        if (z + 1 < kz) {
          connect(r, topo.router_at(static_cast<int>(x), static_cast<int>(y),
                                    static_cast<int>(z + 1)),
                  z_pitch_mm, true);
        }
      }
    }
  }
  for (std::size_t r = 0; r < topo.router_count(); ++r) {
    for (std::size_t c = 0; c < concentration; ++c) topo.attach_module(r);
  }
  return topo;
}

Topology Topology::mesh_2d(std::size_t kx, std::size_t ky) {
  return build_mesh("2D-Mesh " + std::to_string(kx) + "x" + std::to_string(ky),
                    kx, ky, 1, 1, 1.0, 0.05);
}

Topology Topology::star_mesh(std::size_t kx, std::size_t ky,
                             std::size_t concentration) {
  if (concentration == 0) {
    throw std::invalid_argument("star_mesh: concentration >= 1");
  }
  // Concentrated routers sit further apart: pitch grows with sqrt(c).
  return build_mesh("Star-Mesh " + std::to_string(kx) + "x" +
                        std::to_string(ky) + "c" +
                        std::to_string(concentration),
                    kx, ky, 1, concentration,
                    std::sqrt(static_cast<double>(concentration)), 0.05);
}

Topology Topology::star_mesh_irl(std::size_t kx, std::size_t ky,
                                 std::size_t concentration,
                                 std::size_t irl) {
  if (irl == 0) throw std::invalid_argument("star_mesh_irl: irl >= 1");
  Topology base = star_mesh(kx, ky, concentration);
  Topology boosted("Star-Mesh " + std::to_string(kx) + "x" +
                       std::to_string(ky) + "c" +
                       std::to_string(concentration) + " IRL" +
                       std::to_string(irl),
                   kx, ky, 1);
  for (std::size_t r = 0; r < base.router_count(); ++r) {
    boosted.add_router(base.coord(r));
  }
  for (Link link : base.links()) {
    link.bandwidth = static_cast<double>(irl);
    boosted.add_link(link);
  }
  for (std::size_t m = 0; m < base.module_count(); ++m) {
    boosted.attach_module(base.module_router(m));
  }
  return boosted;
}

Topology Topology::mesh_3d(std::size_t kx, std::size_t ky, std::size_t kz) {
  return build_mesh("3D-Mesh " + std::to_string(kx) + "x" +
                        std::to_string(ky) + "x" + std::to_string(kz),
                    kx, ky, kz, 1, 1.0, 0.05);
}

Topology Topology::ciliated_mesh_3d(std::size_t kx, std::size_t ky,
                                    std::size_t kz,
                                    std::size_t concentration) {
  if (concentration == 0) {
    throw std::invalid_argument("ciliated_mesh_3d: concentration >= 1");
  }
  return build_mesh("Ciliated-3D-Mesh " + std::to_string(kx) + "x" +
                        std::to_string(ky) + "x" + std::to_string(kz) + "c" +
                        std::to_string(concentration),
                    kx, ky, kz, concentration,
                    std::sqrt(static_cast<double>(concentration)), 0.05);
}

Topology Topology::partial_vertical_mesh_3d(std::size_t kx, std::size_t ky,
                                            std::size_t kz,
                                            std::size_t tsv_period,
                                            double vertical_bandwidth) {
  if (tsv_period == 0) {
    throw std::invalid_argument("partial_vertical_mesh_3d: period >= 1");
  }
  Topology topo = build_mesh(
      "Partial-Vertical-3D-Mesh p" + std::to_string(tsv_period), kx, ky, kz,
      1, 1.0, 0.05);
  // Rebuild links: drop vertical links at routers whose (x + y) index is
  // not a multiple of the period; retag bandwidth of the kept ones.
  Topology filtered("Partial-Vertical-3D-Mesh p" + std::to_string(tsv_period),
                    kx, ky, kz);
  for (std::size_t r = 0; r < topo.router_count(); ++r) {
    filtered.add_router(topo.coord(r));
  }
  for (const Link& link : topo.links()) {
    if (link.vertical) {
      const Coord& c = topo.coord(link.src);
      if ((static_cast<std::size_t>(c.x) + static_cast<std::size_t>(c.y)) %
              tsv_period !=
          0) {
        continue;  // this router column has no TSV budget
      }
      Link boosted = link;
      boosted.bandwidth = vertical_bandwidth;
      filtered.add_link(boosted);
    } else {
      filtered.add_link(link);
    }
  }
  for (std::size_t m = 0; m < topo.module_count(); ++m) {
    filtered.attach_module(topo.module_router(m));
  }
  return filtered;
}

double Topology::total_wire_length_mm() const {
  double total = 0.0;
  for (const Link& link : links_) total += link.length_mm;
  return total;
}

double Topology::bisection_bandwidth() const {
  // Cut across the widest dimension at its midpoint.
  double best = 0.0;
  for (int dim = 0; dim < 3; ++dim) {
    const std::size_t extent = dim == 0 ? kx_ : (dim == 1 ? ky_ : kz_);
    if (extent < 2) continue;
    const int cut = static_cast<int>(extent) / 2;
    double bandwidth = 0.0;
    for (const Link& link : links_) {
      const Coord& a = coords_[link.src];
      const Coord& b = coords_[link.dst];
      const int ca = dim == 0 ? a.x : (dim == 1 ? a.y : a.z);
      const int cb = dim == 0 ? b.x : (dim == 1 ? b.y : b.z);
      if (ca < cut && cb >= cut) bandwidth += link.bandwidth;
    }
    if (best == 0.0 || (bandwidth > 0.0 && bandwidth < best)) {
      best = bandwidth;
    }
  }
  return best;
}

}  // namespace wi::noc

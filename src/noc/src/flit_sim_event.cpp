/// \file flit_sim_event.cpp
/// \brief Event-wheel + SoA flit simulator core with an optional
///        partitioned-parallel mode. Bit-identical to the legacy
///        cycle-stepped loop in flit_sim.cpp for integer router delays
///        >= 1, at any partition/thread count.
///
/// Three ideas, layered:
///
/// 1. Bitmap event wheel. A router only does work on a cycle where (a)
///    a flit becomes ready in one of its input rings, (b) its injection
///    stream offers a packet, or (c) it polled itself after being
///    blocked. All wakes land within (c, c + delay], so a power-of-two
///    calendar wheel of delay+2 slots holds every pending wake — and
///    each slot is a router *bitmap*, not a list: scheduling is a
///    single idempotent OR (no dedup state, no stale-entry filtering),
///    draining a slot is a countr_zero walk that visits routers in
///    ascending index order (the legacy within-cycle order), and a
///    spuriously-set bit costs one state-no-op turn. Cycles with no due
///    router, no injection, and no fault event are skipped wholesale —
///    the drain window after traffic stops costs nothing.
///
/// 2. Cache-conscious flit records. A flit is one 16-byte record
///    (ready cycle; meta = inject cycle | destination router << 37 |
///    measured << 63) that travels unchanged hop to hop — push and pop
///    touch one cache line where an unpacked layout touches three. The
///    injection queue is virtual and uses the same meta format: the
///    whole Bernoulli schedule is materialised from the seed in one
///    pass (the RNG stream never depends on network state) and consumed
///    through a cursor; destination sampling accelerates the legacy
///    lower_bound with a guide table whose final comparisons are the
///    legacy ones bit for bit. The round-robin arbitration pointer
///    advances exactly once per router per cycle, so it is derived as
///    cycle mod n_inputs, and on the (ubiquitous) all-bandwidth-1
///    topologies the per-output budgets collapse to one u32 mask held
///    in a register for the whole turn. The packing caps the core at
///    2^26 routers, 2^37 total cycles, and 2^16-1 buffer depth; the
///    dispatcher in flit_sim.cpp falls back to the legacy loop beyond.
///
/// 3. Partitioned parallelism. Routers are sharded into contiguous
///    index ranges. Shard k may execute cycle c once every coupled
///    lower shard has completed c and every coupled higher shard has
///    completed c-1 — the same low-to-high information flow as the
///    sequential loop, so cross-shard ring accesses need no locks
///    (coupled shards provably never run concurrently). Cross-shard
///    wakes travel through SPSC mailboxes; idle shards skip ahead up to
///    min over coupled neighbours of (their progress + delay), which no
///    in-flight wake can undercut. Fault cycles are global barriers:
///    the last shard to arrive applies the kill events and reroute for
///    everyone. Counters are per-shard and merged in shard order, so
///    results are bit-identical at any partition and thread count.

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "flit_sim_internal.hpp"
#include "wi/common/rng.hpp"
#include "wi/common/status.hpp"
#include "wi/noc/mesh_grid.hpp"
#include "wi/noc/routing.hpp"

namespace wi::noc::detail {

namespace {

using std::size_t;
using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

constexpr u64 kNever = ~u64{0};
constexpr u8 kNoPort = 0xFF;      ///< pair never routed (unused dst)
constexpr u8 kFailedPort = 0xFE;  ///< routing failed; Status recorded
constexpr u8 kEject = 0xFD;       ///< cached port: flit is at its dst
constexpr size_t kMaxRouteFailures = 8;
/// Flit meta word: inject cycle | dst router << 37 | measured << 63.
constexpr unsigned kCycBits = 37;
constexpr u64 kCycMask = (u64{1} << kCycBits) - 1;
constexpr unsigned kDstBits = 26;
constexpr u32 kDstMask = (u32{1} << kDstBits) - 1;
/// Mailbox entries pack (wake cycle << kDstBits) | router.
constexpr unsigned kRouterBits = kDstBits;

/// cycle mod n_inputs with compiler-strength-reduced constants for the
/// small port counts every mesh router has (the hot path runs this once
/// per turn; a hardware 64-bit division would dominate small turns).
inline u32 fast_mod(u64 c, u32 n) {
  switch (n) {
    case 1: return 0;
    case 2: return static_cast<u32>(c & 1);
    case 3: return static_cast<u32>(c % 3);
    case 4: return static_cast<u32>(c & 3);
    case 5: return static_cast<u32>(c % 5);
    case 6: return static_cast<u32>(c % 6);
    case 7: return static_cast<u32>(c % 7);
    case 8: return static_cast<u32>(c & 7);
    case 9: return static_cast<u32>(c % 9);
    default: return static_cast<u32>(c % n);
  }
}

/// (router, dst_router) -> local output port, one byte per pair (the
/// legacy table stores link + port in 8 bytes; the port alone recovers
/// both through the per-router out-link arrays, shrinking the table 8x
/// so 16^3 meshes stay cache-resident).
struct PortTable {
  std::vector<u8> port;  ///< [at * routers + dst]
  std::unordered_map<size_t, Status> failures;
};

PortTable build_port_table(const Topology& topology, const Routing& routing,
                           const std::vector<bool>& dst_used) {
  const size_t routers = topology.router_count();
  PortTable table;
  table.port.assign(routers * routers, kNoPort);
  for (size_t at = 0; at < routers; ++at) {
    const auto& outs = topology.out_links(at);
    if (outs.size() >= kFailedPort) {
      throw StatusError(Status(
          StatusCode::kExecutionError,
          "simulate_network: router " + std::to_string(at) + " has " +
              std::to_string(outs.size()) +
              " output ports; the event core's byte-wide port table "
              "supports at most 253"));
    }
    for (size_t dst = 0; dst < routers; ++dst) {
      if (at == dst || !dst_used[dst]) continue;
      const size_t key = at * routers + dst;
      size_t l;
      try {
        l = routing.first_hop(topology, at, dst);
      } catch (const StatusError& e) {
        table.port[key] = kFailedPort;
        table.failures.emplace(key, e.status());
        continue;
      }
      size_t oi = 0;
      while (oi < outs.size() && outs[oi] != l) ++oi;
      if (oi == outs.size()) {
        table.port[key] = kFailedPort;
        table.failures.emplace(
            key, Status(StatusCode::kExecutionError,
                        "simulate_network: next-hop link " +
                            std::to_string(l) + " is not an out-link of "
                            "router " + std::to_string(at)));
        continue;
      }
      table.port[key] = static_cast<u8>(oi);
    }
  }
  return table;
}

/// Single-producer single-consumer wake mailbox. Capacity is sized from
/// the crossing-link bandwidth so a push can never find it full while
/// the staircase protocol holds (the producer runs at most ~2 cycles
/// past the consumer's last drain); the bounded spin below is a
/// backstop that turns a protocol bug into an error instead of a hang.
struct WakeQueue {
  explicit WakeQueue(size_t cap_pow2) : buf(cap_pow2), mask(cap_pow2 - 1) {}
  std::vector<u64> buf;
  size_t mask;
  alignas(64) std::atomic<u64> head{0};
  alignas(64) std::atomic<u64> tail{0};

  [[nodiscard]] bool try_push(u64 v) {
    const u64 t = tail.load(std::memory_order_relaxed);
    if (t - head.load(std::memory_order_acquire) > mask) return false;
    buf[t & mask] = v;
    tail.store(t + 1, std::memory_order_release);
    return true;
  }
  [[nodiscard]] bool try_pop(u64& v) {
    const u64 h = head.load(std::memory_order_relaxed);
    if (h == tail.load(std::memory_order_acquire)) return false;
    v = buf[h & mask];
    head.store(h + 1, std::memory_order_release);
    return true;
  }
};

/// One contiguous router range plus everything only its owner touches.
struct Shard {
  u32 id = 0;
  u32 begin = 0;
  u32 end = 0;
  // Bitmap event wheel: W slots x words router bitmaps. A set bit means
  // "turn this router at the next occurrence of this slot". Bits are
  // only ever set by this shard (or drained from its mailboxes), words
  // are private per shard, and a wake always lands within W-2 cycles of
  // the setter, so each live bit's cycle is exactly the first
  // occurrence of its slot at or after the shard's progress cursor.
  std::vector<u64> wheel;  ///< [slot * words + word]
  size_t words = 0;
  size_t word_base = 0;
  // Injection wake stream: (cycle << kRouterBits | router) of every
  // cycle a router in this shard receives at least one offered packet.
  std::vector<u64> gw;
  size_t gw_pos = 0;
  // Coupled neighbour shards (share at least one link, either
  // direction) and the producers with a mailbox into this shard.
  std::vector<u32> coupled;
  std::vector<u32> in_mail;
  // Scratch + counters (merged in shard order at the end).
  std::vector<int> budget;
  u64 delivered = 0;
  u64 dropped = 0;
  u64 unreachable = 0;
  u64 latency = 0;  ///< exact integer sum; converted to double once
  u64 turns = 0;
  struct Fail {
    u64 cycle;
    u32 router;
    Status status;
  };
  std::vector<Fail> fails;
  /// Completed-cycle progress, encoded as completed+1 (0 = none yet).
  alignas(64) std::atomic<u64> p1{0};
  size_t barrier_idx = 0;
  bool at_barrier = false;
  bool done = false;
};

class EventCore {
 public:
  EventCore(const Topology& topology, const Routing& routing,
            const TrafficPattern& traffic, double injection_rate,
            const FlitSimConfig& config, const fault::FaultSchedule& faults);
  FlitSimResult run();

 private:
  void schedule(Shard& sh, u32 r, u64 t) {
    sh.wheel[(t & wmask_) * sh.words +
             ((static_cast<size_t>(r) >> 6) - sh.word_base)] |=
        u64{1} << (r & 63);
  }
  void send_wake(Shard& sh, u32 owner, u64 t);
  void drain_mail(Shard& sh);
  /// Flit at router r has no live next hop toward dstr: drop + record
  /// the Status once per pair in fault mode, throw otherwise.
  void drop_unroutable(Shard& sh, u32 r, u64 c, u32 dstr, bool measured,
                       u8 p);
  template <bool BW1, bool GRID>
  void turn(Shard& sh, u32 r, u64 c);
  template <bool BW1, bool GRID>
  void execute_cycle(Shard& sh, u64 c);
  u64 shard_next_work(Shard& sh, u64 p1v);
  bool step(Shard& sh);
  void apply_faults_at(u64 cycle);
  void rebuild_live_ports();

  const Topology& topology_;
  const FlitSimConfig& config_;
  const fault::FaultSchedule& faults_;
  size_t modules_ = 0;
  size_t routers_ = 0;
  size_t channels_ = 0;
  u64 delay_ = 0;
  u64 total_ = 0;
  u64 measure_begin_ = 0;
  u64 measure_end_ = 0;
  u32 depth_ = 0;

  std::vector<bool> dst_used_;
  PortTable ports_;
  // Computed next-hop for regular meshes under dimension-order routing:
  // replaces the O(routers^2) port table with O(routers) state. Faults
  // rebuild dense tables, so chaos mode always uses ports_.
  std::optional<MeshGrid> grid_;
  bool use_grid_ = false;
  std::vector<std::vector<size_t>> in_channels_;
  // Flat per-router output arrays: out_off_[r]..out_off_[r+1] indexes
  // (ring | downstream router << 32) words and the bandwidth template.
  std::vector<size_t> out_off_;
  std::vector<u64> out_rd_;
  std::vector<int> budget_template_;
  std::vector<u32> n_inputs_;
  // All-links-bandwidth-1 fast path: the per-turn budget array becomes
  // a per-router bitmask of outputs that may still send this cycle.
  bool bw1_ = false;
  std::vector<u32> out_mask_;
  // Ring storage: rings re-indexed so each router's input-channel rings
  // are contiguous (chin_off_[r]..chin_off_[r+1]), in ascending link
  // order (the legacy round-robin order). Slot j of ring rid is the
  // 16-byte record f_[((rid << cap_shift_) + j) * 2] = ready cycle,
  // [... + 1] = meta.
  std::vector<size_t> chin_off_;
  std::vector<u32> ring_of_link_;
  std::vector<u32> ring_owner_;  ///< ring -> router whose input it is
  size_t cap_shift_ = 0;
  u32 cap_mask_ = 0;
  std::vector<u64> f_;
  std::vector<u32> qhs_;  ///< head | size << 16
  std::vector<u64> hr_;   ///< head-ready mirror, kNever when empty
  /// Cached output port per occupied slot: the port the flit will want
  /// at the ring's owner (kEject when the owner is its destination).
  /// Computed once at push time — a blocked head retried every cycle
  /// costs a byte load instead of a meta decode + port-table walk —
  /// and refreshed wholesale when a fault rebuild changes the table.
  std::vector<u8> pp_;
  // Precomputed injection schedule (cycle-major per router, meta-word
  // entries), the next offer cycle per router, and the global
  // measured-offer count.
  std::vector<size_t> inj_off_;
  std::vector<size_t> inj_cur_;
  std::vector<u64> inj_next_;  ///< next offer cycle, kNever when spent
  std::vector<u64> inj_;
  u64 injected_total_ = 0;
  // Wheel geometry.
  size_t W_ = 0;
  u64 wmask_ = 0;
  // Shards.
  size_t S_ = 1;
  size_t T_ = 1;
  std::vector<u32> shard_of_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<WakeQueue>> mail_;  ///< [producer * S + consumer]
  // Fault mode.
  bool chaos_ = false;
  std::vector<u8> link_alive_;
  std::vector<u8> router_alive_;
  std::vector<u8> seen_;
  size_t fault_pos_ = 0;
  std::vector<u64> barriers_;
  std::unique_ptr<std::atomic<u32>[]> arrivals_;
  std::unique_ptr<std::atomic<u8>[]> barrier_done_;
  u64 fault_dropped_ = 0;
  u64 dead_links_ = 0;
  u64 dead_routers_ = 0;
  std::atomic<bool> abort_{false};
};

EventCore::EventCore(const Topology& topology, const Routing& routing,
                     const TrafficPattern& traffic, double injection_rate,
                     const FlitSimConfig& config,
                     const fault::FaultSchedule& faults)
    : topology_(topology), config_(config), faults_(faults) {
  modules_ = topology.module_count();
  routers_ = topology.router_count();
  channels_ = topology.link_count();
  if (traffic.modules() != modules_) {
    throw std::invalid_argument("simulate_network: traffic mismatch");
  }
  delay_ = static_cast<u64>(config.router_delay_cycles);
  total_ = config.warmup_cycles + config.measure_cycles + config.drain_cycles;
  measure_begin_ = config.warmup_cycles;
  measure_end_ = config.warmup_cycles + config.measure_cycles;
  if (routers_ >= (size_t{1} << kDstBits) ||
      total_ + delay_ >= (u64{1} << kCycBits) ||
      config.buffer_depth >= (size_t{1} << 16)) {
    throw std::invalid_argument(
        "simulate_network: event-core packing limits exceeded (needs "
        "routers < 2^26, warmup+measure+drain+delay < 2^37, buffer depth "
        "< 2^16); use FlitSimCore::kLegacy");
  }
  depth_ = static_cast<u32>(config.buffer_depth);

  chaos_ = !faults.events.empty();

  // --- traffic cdf + used destinations (identical to the legacy core;
  // the sampler clamps to the last module, so its router is routable).
  // Implicit patterns never build the O(modules^2) CDF: destinations
  // come from the closed-form sampler, and any router may be a target.
  const bool implicit = traffic.implicit_form();
  std::vector<double> cdf;
  dst_used_.assign(routers_, implicit);
  if (!implicit) {
    cdf.resize(modules_ * modules_);
    for (size_t s = 0; s < modules_; ++s) {
      double acc = 0.0;
      for (size_t d = 0; d < modules_; ++d) {
        const double p = traffic.probability(s, d);
        acc += p;
        cdf[s * modules_ + d] = acc;
        if (p > 0.0) dst_used_[topology.module_router(d)] = true;
      }
    }
    if (modules_ > 0) dst_used_[topology.module_router(modules_ - 1)] = true;
  }
  std::vector<size_t> module_router(modules_);
  for (size_t d = 0; d < modules_; ++d) {
    module_router[d] = topology.module_router(d);
  }

  // --- next-hop state. A regular mesh under dimension-order routing
  // gets the computed O(routers) grid (the port it yields is the dense
  // table's port bit for bit — see MeshGrid — so results are unchanged);
  // anything else, and fault mode (which rewrites tables per failure),
  // keeps the dense O(routers^2) port table.
  if (!chaos_ &&
      dynamic_cast<const DimensionOrderRouting*>(&routing) != nullptr) {
    grid_ = MeshGrid::analyze(topology);
  }
  use_grid_ = grid_.has_value();
  if (!use_grid_) {
    ports_ = build_port_table(topology, routing, dst_used_);
  }

  // --- flat output arrays + input-channel lists.
  in_channels_.assign(routers_, {});
  for (size_t l = 0; l < channels_; ++l) {
    in_channels_[topology.link(l).dst].push_back(l);
  }
  out_off_.assign(routers_ + 1, 0);
  for (size_t r = 0; r < routers_; ++r) {
    out_off_[r + 1] = out_off_[r] + topology.out_links(r).size();
  }
  std::vector<u32> out_link(out_off_[routers_]);
  out_rd_.resize(out_off_[routers_]);
  budget_template_.resize(out_off_[routers_]);
  size_t max_outs = 0;
  for (size_t r = 0; r < routers_; ++r) {
    const auto& outs = topology.out_links(r);
    max_outs = std::max(max_outs, outs.size());
    for (size_t i = 0; i < outs.size(); ++i) {
      const size_t l = outs[i];
      out_link[out_off_[r] + i] = static_cast<u32>(l);
      out_rd_[out_off_[r] + i] = static_cast<u64>(topology.link(l).dst) << 32;
      const int b = static_cast<int>(topology.link(l).bandwidth);
      budget_template_[out_off_[r] + i] = b < 1 ? 1 : b;
    }
  }
  bw1_ = max_outs <= 32;
  for (const int b : budget_template_) bw1_ = bw1_ && b == 1;
  if (bw1_) {
    out_mask_.assign(routers_, 0);
    for (size_t r = 0; r < routers_; ++r) {
      const size_t n_outs = out_off_[r + 1] - out_off_[r];
      out_mask_[r] = n_outs >= 32 ? ~u32{0} : (u32{1} << n_outs) - 1;
    }
  }

  // --- ring storage, re-indexed so a router's input rings are
  // contiguous.
  size_t cap = 1;
  while (cap < std::max<size_t>(depth_, 1)) cap <<= 1;
  cap_shift_ = static_cast<size_t>(std::countr_zero(cap));
  cap_mask_ = static_cast<u32>(cap - 1);
  chin_off_.assign(routers_ + 1, 0);
  ring_of_link_.assign(channels_, 0);
  ring_owner_.assign(channels_, 0);
  n_inputs_.assign(routers_, 1);
  {
    size_t rid = 0;
    for (size_t r = 0; r < routers_; ++r) {
      chin_off_[r] = rid;
      for (const size_t l : in_channels_[r]) {
        ring_owner_[rid] = static_cast<u32>(r);
        ring_of_link_[l] = static_cast<u32>(rid++);
      }
      n_inputs_[r] = static_cast<u32>(1 + in_channels_[r].size());
    }
    chin_off_[routers_] = rid;
  }
  for (size_t i = 0; i < out_rd_.size(); ++i) {
    out_rd_[i] |= ring_of_link_[out_link[i]];
  }
  f_.assign((channels_ << cap_shift_) * 2, 0);
  qhs_.assign(channels_, 0);
  hr_.assign(channels_, kNever);
  pp_.assign(channels_ << cap_shift_, kNoPort);

  // --- wheel geometry: wakes span (c, c + delay] plus the c+1 blocked
  // poll, so delay+2 pow2 slots are unambiguous.
  W_ = 1;
  while (W_ < static_cast<size_t>(delay_) + 2) W_ <<= 1;
  wmask_ = W_ - 1;

  // --- shards: contiguous balanced ranges.
  S_ = config.partitions != 0 ? config.partitions
                              : (config.threads != 0
                                     ? config.threads
                                     : std::max<size_t>(
                                           1, std::thread::hardware_concurrency()));
  S_ = std::max<size_t>(1, std::min(S_, std::max<size_t>(routers_, 1)));
  T_ = config.threads != 0
           ? config.threads
           : std::max<size_t>(1, std::thread::hardware_concurrency());
  T_ = std::min(T_, S_);
  shard_of_.assign(routers_, 0);
  shards_.clear();
  for (size_t k = 0; k < S_; ++k) {
    auto sh = std::make_unique<Shard>();
    sh->id = static_cast<u32>(k);
    sh->begin = static_cast<u32>(k * routers_ / S_);
    sh->end = static_cast<u32>((k + 1) * routers_ / S_);
    for (u32 r = sh->begin; r < sh->end; ++r) shard_of_[r] = sh->id;
    if (sh->end > sh->begin) {
      sh->word_base = sh->begin >> 6;
      sh->words = ((sh->end - 1) >> 6) - sh->word_base + 1;
    }
    sh->wheel.assign(W_ * sh->words, 0);
    sh->budget.resize(max_outs);
    shards_.push_back(std::move(sh));
  }
  // Coupled pairs + mailboxes, capacity from crossing bandwidth.
  if (S_ > 1) {
    std::vector<size_t> cross(S_ * S_, 0);
    for (size_t l = 0; l < channels_; ++l) {
      const u32 a = shard_of_[topology.link(l).src];
      const u32 b = shard_of_[topology.link(l).dst];
      if (a == b) continue;
      const int bw = static_cast<int>(topology.link(l).bandwidth);
      cross[a * S_ + b] += static_cast<size_t>(bw < 1 ? 1 : bw);
    }
    mail_.resize(S_ * S_);
    for (size_t a = 0; a < S_; ++a) {
      for (size_t b = 0; b < S_; ++b) {
        if (cross[a * S_ + b] == 0) continue;
        size_t mc = 1;
        while (mc < 8 * cross[a * S_ + b] + 64) mc <<= 1;
        mail_[a * S_ + b] = std::make_unique<WakeQueue>(mc);
        shards_[b]->in_mail.push_back(static_cast<u32>(a));
        shards_[a]->coupled.push_back(static_cast<u32>(b));
        shards_[b]->coupled.push_back(static_cast<u32>(a));
      }
    }
    for (auto& sh : shards_) {
      std::sort(sh->coupled.begin(), sh->coupled.end());
      sh->coupled.erase(std::unique(sh->coupled.begin(), sh->coupled.end()),
                        sh->coupled.end());
      std::sort(sh->in_mail.begin(), sh->in_mail.end());
    }
  }

  // --- injection precompute: one pass over the exact legacy RNG draw
  // sequence (bernoulli, then uniform + lower_bound on a hit) for every
  // (cycle < measure_end, module) pair. The stream is state-independent,
  // so materialising it up front cannot change it. Hits append to one
  // flat draw-order buffer and a stable counting sort by source router
  // produces the per-router cycle-major streams.
  inj_off_.assign(routers_ + 1, 0);
  {
    const u64 inj_end = std::min(measure_end_, total_);
    // Guide table: g[m * K + k] = lower_bound(row_m, k / K). The per-hit
    // search resumes near where lower_bound would land; the guard loops
    // below re-run the legacy comparisons (row[d] < u), so the sampled
    // destination is bit-identical even at bucket-boundary roundoff.
    // Implicit patterns have no CDF and need no guide.
    const size_t K = implicit ? 0 : modules_;
    const double Kd = static_cast<double>(K);
    std::vector<u32> guide(modules_ * K);
    for (size_t m = 0; m < modules_ && !implicit; ++m) {
      const double* row = &cdf[m * modules_];
      size_t i = 0;
      for (size_t k = 0; k < K; ++k) {
        const double lo = static_cast<double>(k) / Kd;
        while (i < modules_ && row[i] < lo) ++i;
        guide[m * K + k] = static_cast<u32>(i);
      }
    }
    // bernoulli(p) draws one generator step x and tests
    // (x >> 11) * 2^-53 < p; the power-of-two product is exact, so the
    // test is equivalently (x >> 11) < ceil(p * 2^53) in pure integer
    // space — the branch no longer waits on an int->double conversion.
    const u64 thresh =
        injection_rate <= 0.0
            ? 0
            : injection_rate >= 1.0
                  ? (u64{1} << 53)
                  : static_cast<u64>(std::ceil(injection_rate * 0x1.0p53));
    std::vector<u64> tmp_meta;
    std::vector<u32> tmp_r;
    const double est = injection_rate * static_cast<double>(inj_end) *
                       static_cast<double>(modules_);
    size_t cap_tmp = static_cast<size_t>(est * 1.10) + 4096;
    tmp_meta.resize(cap_tmp);
    tmp_r.resize(cap_tmp);
    u64* tm = tmp_meta.data();
    u32* tr = tmp_r.data();
    size_t n = 0;
    size_t n_at_begin = kNever;
    Rng rng(config.seed);
    for (u64 cycle = 0; cycle < inj_end; ++cycle) {
      if (cycle == measure_begin_) n_at_begin = n;
      const u64 mbit =
          cycle >= measure_begin_ && cycle < measure_end_ ? u64{1} << 63 : 0;
      if (n + modules_ > cap_tmp) {
        cap_tmp = cap_tmp * 2 + modules_;
        tmp_meta.resize(cap_tmp);
        tmp_r.resize(cap_tmp);
        tm = tmp_meta.data();
        tr = tmp_r.data();
      }
      for (size_t m = 0; m < modules_; ++m) {
        // The Bernoulli hit test consumes one generator step, exactly
        // like the legacy loop's rng.bernoulli; on a hit the dense path
        // draws one uniform for its CDF search and the implicit path
        // hands the RNG to the pattern's closed-form sampler. Either
        // way the stream never depends on network state.
        const u64 x = rng.raw();
        if ((x >> 11) >= thresh) continue;
        size_t d;
        if (implicit) {
          d = traffic.sample(rng, m);
        } else {
          const double u = rng.uniform();
          const double* row = &cdf[m * modules_];
          size_t k = static_cast<size_t>(u * Kd);
          if (k >= K) k = K - 1;
          d = guide[m * K + k];
          while (d > 0 && row[d - 1] >= u) --d;
          while (d < modules_ && row[d] < u) ++d;
          if (d >= modules_) d = modules_ - 1;
        }
        tm[n] = cycle | (static_cast<u64>(module_router[d]) << kCycBits) | mbit;
        tr[n] = static_cast<u32>(module_router[m]);
        ++n;
      }
    }
    injected_total_ = n - (n_at_begin == kNever ? n : n_at_begin);
    // Histogram + injection-wake streams in one post-pass (draw order is
    // cycle-major, so consecutive-duplicate dedup matches the inline
    // form), then a stable counting-sort scatter into per-router
    // cycle-major streams.
    std::vector<size_t> count(routers_, 0);
    u64 last_gw = kNever;
    for (size_t i = 0; i < n; ++i) {
      const u32 r = tr[i];
      ++count[r];
      const u64 gw_entry = ((tm[i] & kCycMask) << kRouterBits) | r;
      if (gw_entry != last_gw) {
        last_gw = gw_entry;
        shards_[shard_of_[r]]->gw.push_back(gw_entry);
      }
    }
    for (size_t r = 0; r < routers_; ++r) {
      inj_off_[r + 1] = inj_off_[r] + count[r];
    }
    inj_.resize(inj_off_[routers_]);
    std::vector<size_t> at(inj_off_.begin(), inj_off_.end() - 1);
    for (size_t i = 0; i < n; ++i) {
      inj_[at[tr[i]]++] = tm[i];
    }
    inj_cur_ = inj_off_;  // cursor starts at each router's first entry
    inj_cur_.pop_back();
    inj_next_.assign(routers_, kNever);
    for (size_t r = 0; r < routers_; ++r) {
      if (count[r] > 0) inj_next_[r] = inj_[inj_off_[r]] & kCycMask;
    }
  }

  // --- fault mode: alive maps, per-pair failure dedup, and the global
  // barrier schedule (head-driven, exactly the cycles where the legacy
  // loop's `head.at_cycle <= cycle` test first fires).
  if (chaos_) {
    link_alive_.assign(channels_, 1);
    router_alive_.assign(routers_, 1);
    seen_.assign(routers_ * routers_, 0);
    size_t pos = 0;
    while (pos < faults.events.size() &&
           faults.events[pos].at_cycle < total_) {
      const u64 c = faults.events[pos].at_cycle;
      barriers_.push_back(c);
      while (pos < faults.events.size() &&
             faults.events[pos].at_cycle <= c) {
        ++pos;
      }
    }
    if (!barriers_.empty()) {
      arrivals_ = std::make_unique<std::atomic<u32>[]>(barriers_.size());
      barrier_done_ = std::make_unique<std::atomic<u8>[]>(barriers_.size());
      for (size_t i = 0; i < barriers_.size(); ++i) {
        arrivals_[i].store(0, std::memory_order_relaxed);
        barrier_done_[i].store(0, std::memory_order_relaxed);
      }
    }
  }
}

void EventCore::send_wake(Shard& sh, u32 owner, u64 t) {
  const u32 os = shard_of_[owner];
  if (os == sh.id) {
    schedule(sh, owner, t);
    return;
  }
  WakeQueue& q = *mail_[sh.id * S_ + os];
  const u64 v = (t << kRouterBits) | owner;
  size_t spins = 0;
  while (!q.try_push(v)) {
    if (++spins > (size_t{1} << 22)) {
      throw StatusError(Status(StatusCode::kExecutionError,
                               "simulate_network: cross-shard wake mailbox "
                               "overflow (partition protocol bug)"));
    }
    std::this_thread::yield();
  }
}

void EventCore::drain_mail(Shard& sh) {
  for (const u32 p : sh.in_mail) {
    WakeQueue& q = *mail_[static_cast<size_t>(p) * S_ + sh.id];
    u64 v;
    while (q.try_pop(v)) {
      schedule(sh, static_cast<u32>(v & ((u32{1} << kRouterBits) - 1)),
               v >> kRouterBits);
    }
  }
}

void EventCore::drop_unroutable(Shard& sh, const u32 r, const u64 c,
                                const u32 dstr, const bool measured,
                                const u8 p) {
  const size_t key = static_cast<size_t>(r) * routers_ + dstr;
  if (chaos_ && p == kFailedPort) {
    // Destination cut off by a fault: drop, surface the Status once
    // per (source, destination) pair, never throw.
    if (measured) ++sh.unreachable;
    if (!seen_[key]) {
      seen_[key] = 1;
      sh.fails.push_back({c, r, ports_.failures.at(key)});
    }
    return;
  }
  if (p == kFailedPort) throw StatusError(ports_.failures.at(key));
  throw StatusError(Status(
      StatusCode::kExecutionError,
      "simulate_network: no precomputed next hop for router " +
          std::to_string(r) + " -> " + std::to_string(dstr)));
}

template <bool BW1, bool GRID>
void EventCore::turn(Shard& sh, const u32 r, const u64 c) {
  ++sh.turns;
  // Hoist the hot arrays (and the scalars the loop re-derives indices
  // from) into locals: stores through raw element pointers cannot alias
  // the vector control blocks or `this`, so the compiler keeps every
  // base address in a register across the loop instead of reloading it
  // after each store.
  u64* const f = f_.data();
  u32* const qhs = qhs_.data();
  u64* const hr = hr_.data();
  u8* const pp = pp_.data();
  const u64* const ord = out_rd_.data();
  // GRID mode computes the next-hop port from packed coordinates; the
  // dense table is never allocated then.
  const u8* const pt = ports_.port.data();
  const MeshGrid* const grid = GRID ? &*grid_ : nullptr;
  const size_t csh = cap_shift_;
  const u32 cmask = cap_mask_;
  const u32 dep = depth_;
  const u64 del = delay_;
  const size_t nrouters = routers_;
  const size_t ob = out_off_[r];
  u32 obud = 0;
  int* bud = nullptr;
  if constexpr (BW1) {
    obud = out_mask_[r];
  } else {
    bud = sh.budget.data();
    const size_t n_outs = out_off_[r + 1] - ob;
    if (n_outs > 0) {
      std::memcpy(bud, &budget_template_[ob], n_outs * sizeof(int));
    }
  }
  int eject_budget = 1;
  const u32 n_in = n_inputs_[r];
  const u32 start = fast_mod(c, n_in);
  const u8* prow = GRID ? nullptr : pt + static_cast<size_t>(r) * nrouters;
  const size_t cb = chin_off_[r];
  const size_t ce = chin_off_[r + 1];

  /// Append flit record m to the ring named by rd (= ring | owner
  /// router << 32) whose pre-checked cursor word is hs2. The caller has
  /// already consumed budget and verified the ring has room. Caches the
  /// output port the flit will want at the receiving router.
  const auto push_flit = [&](u64 rd, u32 hs2, u64 m) {
    const u32 drid = static_cast<u32>(rd);
    qhs[drid] = hs2 + 0x10000;
    const size_t si = (static_cast<size_t>(drid) << csh) +
                      (((hs2 & 0xFFFFu) + (hs2 >> 16)) & cmask);
    const u64 ready = c + del;
    f[si * 2] = ready;
    f[si * 2 + 1] = m;
    const u32 owner = static_cast<u32>(rd >> 32);
    const u32 fdst = static_cast<u32>(m >> kCycBits) & kDstMask;
    if constexpr (GRID) {
      pp[si] = fdst == owner ? kEject : grid->next_port(owner, fdst);
    } else {
      pp[si] = fdst == owner
                   ? kEject
                   : pt[static_cast<size_t>(owner) * nrouters + fdst];
    }
    if (!(hs2 >> 16)) hr[drid] = ready;
    send_wake(sh, owner, ready);
  };

  // One round-robin pass = rings [start-1, n_in-1), the virtual
  // injection ring, then rings [0, start-1) — i.e. the rotation
  // start, start+1, ..., n_in-1, 0, 1, ..., start-1 with the
  // injection queue at rotational position 0. `open` goes false once
  // every output budget and the eject budget are spent: no later input
  // can move anything, so the rest of the pass is skipped (only valid
  // in clean mode — a fault-era head with a dead route is consumed
  // without budget, so those passes run to the end).
  bool open = true;
  const auto drain_rings = [&](size_t lo, size_t hi) {
    for (size_t base = lo; base < hi && open; base += 64) {
      // Branchless ready-set gather: hr_ for this router's rings is
      // contiguous, so the readiness tests issue in parallel instead of
      // serialising one dependent-load chain per ring.
      const size_t n = std::min<size_t>(hi - base, 64);
      u64 rmask = 0;
      for (size_t j = 0; j < n; ++j) {
        rmask |= static_cast<u64>(hr[base + j] <= c) << j;
      }
      while (rmask) {
        const size_t rid = base + static_cast<size_t>(std::countr_zero(rmask));
        rmask &= rmask - 1;
        for (;;) {
          const u32 hs = qhs[rid];
          const size_t si = (rid << csh) + (hs & 0xFFFFu);
          const u8 p = pp[si];
          if (p < kEject) {
            if constexpr (BW1) {
              if (!((obud >> p) & 1u)) break;
            } else {
              if (bud[p] <= 0) break;
            }
            const u64 rd = ord[ob + p];
            const u32 hs2 = qhs[static_cast<u32>(rd)];
            if ((hs2 >> 16) >= dep) break;
            if constexpr (BW1) {
              obud &= ~(u32{1} << p);
            } else {
              --bud[p];
            }
            push_flit(rd, hs2, f[si * 2 + 1]);
          } else if (p == kEject) {
            if (eject_budget <= 0) break;
            --eject_budget;
            const u64 m = f[si * 2 + 1];
            if (m >> 63) {
              ++sh.delivered;
              sh.latency += c + del - (m & kCycMask);
            }
          } else {
            const u64 m = f[si * 2 + 1];
            drop_unroutable(sh, r, c,
                            static_cast<u32>(m >> kCycBits) & kDstMask,
                            (m >> 63) != 0, p);
          }
          // pop
          const u32 nh = ((hs & 0xFFFFu) + 1) & cmask;
          const u32 size = (hs >> 16) - 1;
          qhs[rid] = nh | (size << 16);
          if (!size) {
            hr[rid] = kNever;
            break;
          }
          const u64 nr = f[((rid << csh) + nh) * 2];
          hr[rid] = nr;
          if (nr > c) break;
        }
        if constexpr (BW1) {
          if (!chaos_ && obud == 0 && eject_budget <= 0) {
            open = false;
            break;
          }
        }
      }
    }
  };
  /// Offer the injection-stream record m (destination dstr). Returns
  /// false when the source must stall; consumes the record otherwise
  /// (pushed, or dropped unreachable in fault mode).
  const auto try_inject = [&](u32 dstr, u64 m) -> bool {
    const u8 p = GRID ? grid->next_port(r, dstr) : prow[dstr];
    if constexpr (!GRID) {
      // A full regular mesh always routes, so only the dense table can
      // hold failed/unused markers.
      if (p >= kFailedPort) {
        drop_unroutable(sh, r, c, dstr, (m >> 63) != 0, p);
        return true;
      }
    }
    if constexpr (BW1) {
      if (!((obud >> p) & 1u)) return false;
    } else {
      if (bud[p] <= 0) return false;
    }
    const u64 rd = ord[ob + p];
    const u32 hs2 = qhs[static_cast<u32>(rd)];
    if ((hs2 >> 16) >= dep) return false;
    if constexpr (BW1) {
      obud &= ~(u32{1} << p);
    } else {
      --bud[p];
    }
    push_flit(rd, hs2, m);
    return true;
  };
  const auto drain_injection = [&] {
    if (!open) return;
    if (inj_next_[r] > c) return;
    size_t cur = inj_cur_[r];
    const size_t end = inj_off_[r + 1];
    const u64* const inj = inj_.data();
    u64 e = 0;
    while (cur < end && (e = inj[cur], (e & kCycMask) <= c)) {
      const u32 dstr = static_cast<u32>(e >> kCycBits) & kDstMask;
      if (dstr == r) {
        if (eject_budget <= 0) break;
        --eject_budget;
        if (e >> 63) {
          ++sh.delivered;
          sh.latency += c + del - (e & kCycMask);
        }
      } else if (!try_inject(dstr, e)) {
        break;
      }
      ++cur;
    }
    inj_cur_[r] = cur;
    inj_next_[r] = cur < end ? inj[cur] & kCycMask : kNever;
  };
  if (start == 0) {
    drain_injection();
    drain_rings(cb, ce);
  } else {
    drain_rings(cb + start - 1, ce);
    drain_injection();
    drain_rings(cb, cb + start - 1);
  }

  // End-of-turn reschedule: earliest pending head (in-pipeline flit or
  // stalled injection). A head still blocked at <= c polls next cycle.
  u64 m = inj_next_[r];
  for (size_t rid = cb; rid < ce; ++rid) {
    m = std::min(m, hr[rid]);
  }
  if (m != kNever) schedule(sh, r, m <= c ? c + 1 : m);
}

template <bool BW1, bool GRID>
void EventCore::execute_cycle(Shard& sh, const u64 c) {
  while (sh.gw_pos < sh.gw.size() && (sh.gw[sh.gw_pos] >> kRouterBits) <= c) {
    schedule(sh,
             static_cast<u32>(sh.gw[sh.gw_pos]) & ((u32{1} << kRouterBits) - 1),
             c);
    ++sh.gw_pos;
  }
  u64* slot = &sh.wheel[(c & wmask_) * sh.words];
  for (size_t w = 0; w < sh.words; ++w) {
    u64 bits = slot[w];
    if (!bits) continue;
    slot[w] = 0;
    const u32 rbase = static_cast<u32>((sh.word_base + w) << 6);
    do {
      const u32 r = rbase + static_cast<u32>(std::countr_zero(bits));
      bits &= bits - 1;
      turn<BW1, GRID>(sh, r, c);
    } while (bits);
  }
}

u64 EventCore::shard_next_work(Shard& sh, const u64 p1v) {
  u64 t = kNever;
  if (sh.gw_pos < sh.gw.size()) t = sh.gw[sh.gw_pos] >> kRouterBits;
  if (sh.barrier_idx < barriers_.size()) {
    t = std::min(t, barriers_[sh.barrier_idx]);
  }
  // Every live bit's cycle is the first occurrence of its slot at or
  // after p1v (wakes span at most W-2 cycles and progress never skips
  // past one), so the earliest non-empty slot offset is the answer.
  for (size_t off = 0; off < W_; ++off) {
    const u64* slot = &sh.wheel[((p1v + off) & wmask_) * sh.words];
    u64 any = 0;
    for (size_t w = 0; w < sh.words; ++w) any |= slot[w];
    if (any) return std::min(t, p1v + off);
  }
  return t;
}

bool EventCore::step(Shard& sh) {
  if (sh.done) return false;
  const u64 p1v = sh.p1.load(std::memory_order_relaxed);
  if (p1v >= total_) {
    sh.done = true;
    return true;
  }
  // Conservative window: wakes in flight from a coupled neighbour at
  // completed cycle p target cycles > p + delay, so completion may
  // advance that far without missing work. Read caps (acquire) BEFORE
  // draining mailboxes: entries sent after the read target cycles
  // beyond the cap, entries sent before it are visible to the drain.
  u64 cap1 = kNever;
  for (const u32 nb : sh.coupled) {
    cap1 = std::min(
        cap1, shards_[nb]->p1.load(std::memory_order_acquire) + delay_);
  }
  drain_mail(sh);
  u64 t = shard_next_work(sh, p1v);
  if (t >= total_) t = total_;  // nothing executable; run out the clock
  const u64 sd1 = std::min(t, cap1);
  if (sd1 > p1v) {
    sh.p1.store(sd1, std::memory_order_release);
    if (sd1 >= total_) sh.done = true;
    return true;
  }
  if (t != p1v || t >= total_) return false;  // waiting on neighbours
  // Fault cycles are global barriers: rendezvous with completed == t-1,
  // last arriver applies the kill events + reroute for everyone.
  if (sh.barrier_idx < barriers_.size() && barriers_[sh.barrier_idx] == t) {
    const size_t bi = sh.barrier_idx;
    bool progressed = false;
    if (!sh.at_barrier) {
      sh.at_barrier = true;
      progressed = true;
      if (arrivals_[bi].fetch_add(1, std::memory_order_acq_rel) + 1 ==
          static_cast<u32>(S_)) {
        apply_faults_at(t);
        barrier_done_[bi].store(1, std::memory_order_release);
      }
    }
    if (!barrier_done_[bi].load(std::memory_order_acquire)) {
      return progressed;
    }
    ++sh.barrier_idx;
    sh.at_barrier = false;
  }
  // Staircase constraints: lower coupled shards must have completed t
  // (their within-cycle effects precede ours), higher ones t-1.
  for (const u32 nb : sh.coupled) {
    const u64 need = nb < sh.id ? t + 1 : t;
    if (shards_[nb]->p1.load(std::memory_order_acquire) < need) return false;
  }
  drain_mail(sh);
  if (bw1_) {
    if (use_grid_) {
      execute_cycle<true, true>(sh, t);
    } else {
      execute_cycle<true, false>(sh, t);
    }
  } else if (use_grid_) {
    execute_cycle<false, true>(sh, t);
  } else {
    execute_cycle<false, false>(sh, t);
  }
  sh.p1.store(t + 1, std::memory_order_release);
  if (t + 1 >= total_) sh.done = true;
  return true;
}

void EventCore::apply_faults_at(const u64 cycle) {
  bool changed = false;
  const auto kill_link = [&](size_t l) {
    if (!link_alive_[l]) return;
    link_alive_[l] = 0;
    ++dead_links_;
    const size_t rid = ring_of_link_[l];
    const size_t base = (rid << cap_shift_) << 1;
    const u32 hs = qhs_[rid];
    for (u32 i = 0; i < (hs >> 16); ++i) {
      const size_t j = ((hs & 0xFFFFu) + i) & cap_mask_;
      if (f_[base + j * 2 + 1] >> 63) ++fault_dropped_;
    }
    qhs_[rid] = 0;
    hr_[rid] = kNever;
    changed = true;
  };
  while (fault_pos_ < faults_.events.size() &&
         faults_.events[fault_pos_].at_cycle <= cycle) {
    const fault::FaultEvent& event = faults_.events[fault_pos_++];
    if (event.kind == fault::FaultEvent::Kind::kLink) {
      if (event.index < channels_) kill_link(event.index);
      continue;
    }
    const size_t r = event.index;
    if (r >= routers_ || !router_alive_[r]) continue;
    router_alive_[r] = 0;
    ++dead_routers_;
    // Out-link queues buffer at the downstream routers and drain
    // normally; the links themselves carry nothing further.
    for (const size_t l : topology_.out_links(r)) {
      if (link_alive_[l]) {
        link_alive_[l] = 0;
        ++dead_links_;
      }
    }
    for (const size_t l : in_channels_[r]) kill_link(l);
    // Flush the injection stream: queued offers die with the router and
    // future measured offers are counted as dropped at the source (the
    // legacy loop counts them one by one at their injection cycles; the
    // totals are identical because the stream is precomputed).
    for (size_t i = inj_cur_[r]; i < inj_off_[r + 1]; ++i) {
      if (inj_[i] >> 63) ++fault_dropped_;
    }
    inj_cur_[r] = inj_off_[r + 1];
    inj_next_[r] = kNever;
    changed = true;
  }
  if (changed) rebuild_live_ports();
}

/// Port-table flavour of the legacy rebuild_live_routes: one reverse
/// BFS per used destination over the surviving graph, minimal hops,
/// ties broken by out-link order. Identical Status rows.
void EventCore::rebuild_live_ports() {
  std::vector<u32> dist(routers_);
  std::vector<u32> bfs_queue(routers_);
  constexpr u32 kUnset = 0xFFFFFFFFu;
  for (size_t dst = 0; dst < routers_; ++dst) {
    if (!dst_used_[dst]) continue;
    std::fill(dist.begin(), dist.end(), kUnset);
    size_t qhead = 0;
    size_t qtail = 0;
    if (router_alive_[dst]) {
      dist[dst] = 0;
      bfs_queue[qtail++] = static_cast<u32>(dst);
    }
    while (qhead < qtail) {
      const size_t v = bfs_queue[qhead++];
      for (const size_t l : in_channels_[v]) {
        if (!link_alive_[l]) continue;
        const size_t u = topology_.link(l).src;
        if (!router_alive_[u] || dist[u] != kUnset) continue;
        dist[u] = dist[v] + 1;
        bfs_queue[qtail++] = static_cast<u32>(u);
      }
    }
    for (size_t at = 0; at < routers_; ++at) {
      if (at == dst) continue;
      const size_t key = at * routers_ + dst;
      if (!router_alive_[at]) {
        ports_.port[key] = kFailedPort;
        ports_.failures[key] =
            Status(StatusCode::kUnreachableRoute,
                   "simulate_network: router " + std::to_string(at) +
                       " failed");
        continue;
      }
      if (dist[at] == kUnset) {
        ports_.port[key] = kFailedPort;
        ports_.failures[key] =
            Status(StatusCode::kUnreachableRoute,
                   "simulate_network: no live route from router " +
                       std::to_string(at) + " to router " +
                       std::to_string(dst) +
                       (router_alive_[dst] ? " after link/router failures"
                                           : " (destination router failed)"));
        continue;
      }
      const auto& outs = topology_.out_links(at);
      for (size_t oi = 0; oi < outs.size(); ++oi) {
        const size_t l = outs[oi];
        if (!link_alive_[l]) continue;
        const size_t w = topology_.link(l).dst;
        if (!router_alive_[w] || dist[w] == kUnset) continue;
        if (dist[w] + 1 != dist[at]) continue;
        ports_.port[key] = static_cast<u8>(oi);
        break;
      }
    }
  }
  // The table changed under the in-flight flits: refresh every occupied
  // slot's cached port (rings emptied by the kill pass have size 0).
  for (size_t rid = 0; rid < channels_; ++rid) {
    const u32 hs = qhs_[rid];
    const u32 size = hs >> 16;
    if (!size) continue;
    const u32 owner = ring_owner_[rid];
    for (u32 i = 0; i < size; ++i) {
      const size_t si =
          (rid << cap_shift_) + (((hs & 0xFFFFu) + i) & cap_mask_);
      const u32 dstr = static_cast<u32>(f_[si * 2 + 1] >> kCycBits) & kDstMask;
      pp_[si] = dstr == owner
                    ? kEject
                    : ports_.port[static_cast<size_t>(owner) * routers_ + dstr];
    }
  }
}

FlitSimResult EventCore::run() {
  if (total_ > 0 && routers_ > 0) {
    if (T_ <= 1) {
      // Inline round-robin over all shards (also the S_ == 1 hot path).
      // The staircase always has an enabled shard, so a full pass with
      // no progress is a protocol bug, not a wait state.
      bool all_done = false;
      while (!all_done) {
        bool progressed = false;
        all_done = true;
        for (auto& sh : shards_) {
          if (!sh->done) {
            progressed = step(*sh) || progressed;
            all_done = all_done && sh->done;
          }
        }
        if (!progressed && !all_done) {
          throw StatusError(Status(StatusCode::kExecutionError,
                                   "simulate_network: partition protocol "
                                   "stalled (no shard can advance)"));
        }
      }
    } else {
      std::vector<std::exception_ptr> errors(S_);
      std::vector<std::thread> pool;
      pool.reserve(T_);
      for (size_t tid = 0; tid < T_; ++tid) {
        pool.emplace_back([this, tid, &errors] {
          bool mine_done = false;
          while (!mine_done && !abort_.load(std::memory_order_relaxed)) {
            bool progressed = false;
            mine_done = true;
            for (size_t k = tid; k < S_; k += T_) {
              Shard& sh = *shards_[k];
              if (sh.done) continue;
              try {
                progressed = step(sh) || progressed;
              } catch (...) {
                errors[k] = std::current_exception();
                abort_.store(true, std::memory_order_relaxed);
                sh.done = true;
                continue;
              }
              mine_done = mine_done && sh.done;
            }
            if (!progressed && !mine_done) std::this_thread::yield();
          }
        });
      }
      for (auto& th : pool) th.join();
      for (size_t k = 0; k < S_; ++k) {
        if (errors[k]) std::rethrow_exception(errors[k]);
      }
    }
  }

  // --- merge in shard order: counters are plain sums; route failures
  // sort by (cycle, router) — stable, so within-turn encounter order
  // survives — and truncate to the legacy cap.
  FlitSimResult result;
  u64 delivered = 0;
  u64 unreachable = 0;
  u64 latency = 0;
  u64 turns = 0;
  std::vector<Shard::Fail> fails;
  for (const auto& sh : shards_) {
    delivered += sh->delivered;
    unreachable += sh->unreachable;
    latency += sh->latency;
    turns += sh->turns;
    fails.insert(fails.end(), sh->fails.begin(), sh->fails.end());
  }
  std::stable_sort(fails.begin(), fails.end(),
                   [](const Shard::Fail& a, const Shard::Fail& b) {
                     return a.cycle != b.cycle ? a.cycle < b.cycle
                                               : a.router < b.router;
                   });
  for (size_t i = 0; i < fails.size() && i < kMaxRouteFailures; ++i) {
    result.route_failures.push_back(fails[i].status);
  }
  result.delivered = static_cast<size_t>(delivered);
  result.injected = static_cast<size_t>(injected_total_);
  result.dropped = static_cast<size_t>(fault_dropped_);
  result.unreachable = static_cast<size_t>(unreachable);
  result.dead_links = static_cast<size_t>(dead_links_);
  result.dead_routers = static_cast<size_t>(dead_routers_);
  result.turns_executed = turns;
  result.mean_latency_cycles =
      delivered == 0
          ? 0.0
          : static_cast<double>(latency) / static_cast<double>(delivered);
  result.delivered_per_cycle =
      static_cast<double>(delivered) /
      (static_cast<double>(config_.measure_cycles) *
       static_cast<double>(modules_));
  result.stable = result.delivered + result.dropped + result.unreachable >=
                  result.injected * 995 / 1000;
  return result;
}

}  // namespace

FlitSimResult simulate_network_event(const Topology& topology,
                                     const Routing& routing,
                                     const TrafficPattern& traffic,
                                     double injection_rate,
                                     const FlitSimConfig& config,
                                     const fault::FaultSchedule& faults) {
  EventCore core(topology, routing, traffic, injection_rate, config, faults);
  return core.run();
}

}  // namespace wi::noc::detail

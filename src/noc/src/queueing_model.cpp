#include "wi/noc/queueing_model.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace wi::noc {

QueueingModel::QueueingModel(const Topology& topology, const Routing& routing,
                             const TrafficPattern& traffic,
                             QueueingModelParams params)
    : params_(params), channel_count_(topology.link_count()) {
  const std::size_t modules = topology.module_count();
  if (traffic.modules() != modules) {
    throw std::invalid_argument("QueueingModel: traffic/module mismatch");
  }
  channel_load_coeff_.assign(channel_count_, 0.0);
  channel_service_.resize(channel_count_);
  for (std::size_t l = 0; l < channel_count_; ++l) {
    channel_service_[l] =
        params_.channel_efficiency * topology.link(l).bandwidth;
  }

  // Exact per-channel load coefficients: each module injects 1 unit of
  // flits per cycle at lambda = 1, split over destinations by the
  // traffic matrix and mapped onto channels by the routing function.
  const double per_module = 1.0;
  for (std::size_t s = 0; s < modules; ++s) {
    for (std::size_t d = 0; d < modules; ++d) {
      const double p = traffic.probability(s, d);
      if (p <= 0.0 || s == d) continue;
      const Route route = routing.route(topology, topology.module_router(s),
                                        topology.module_router(d));
      PathEntry entry;
      entry.weight = p / static_cast<double>(modules);
      entry.channels = route;
      for (const std::size_t l : route) {
        channel_load_coeff_[l] += per_module * p;
      }
      average_hops_ += entry.weight * static_cast<double>(route.size());
      paths_.push_back(std::move(entry));
    }
  }
}

NetworkPerformance QueueingModel::evaluate(double injection_rate) const {
  NetworkPerformance perf;
  if (injection_rate < 0.0) {
    throw std::invalid_argument("QueueingModel: negative injection rate");
  }
  // Per-channel waiting times.
  std::vector<double> wait(channel_count_, 0.0);
  for (std::size_t l = 0; l < channel_count_; ++l) {
    const double lambda = injection_rate * channel_load_coeff_[l] *
                          params_.packet_length_flits;
    const double mu = channel_service_[l];
    const double rho = lambda / mu;
    perf.max_channel_load = std::max(perf.max_channel_load, rho);
    if (rho >= 1.0) {
      perf.saturated = true;
    } else {
      // M/M/1 waiting time in service-time units of this channel.
      wait[l] = rho / (mu * (1.0 - rho));
    }
  }
  if (perf.saturated) {
    perf.mean_latency_cycles = std::numeric_limits<double>::infinity();
    return perf;
  }
  // Traffic-weighted mean path latency.
  const double hop_fixed = params_.router_delay_cycles +
                           params_.link_delay_cycles;
  const double serialization = params_.packet_length_flits - 1.0;
  double latency = 0.0;
  for (const PathEntry& path : paths_) {
    double t = 2.0 * params_.local_delay_cycles +  // inject + eject
               params_.router_delay_cycles +       // destination router
               serialization;
    for (const std::size_t l : path.channels) {
      t += hop_fixed + wait[l];
    }
    latency += path.weight * t;
  }
  perf.mean_latency_cycles = latency;
  return perf;
}

double QueueingModel::zero_load_latency_cycles() const {
  return evaluate(0.0).mean_latency_cycles;
}

double QueueingModel::saturation_rate() const {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t l = 0; l < channel_count_; ++l) {
    if (channel_load_coeff_[l] <= 0.0) continue;
    best = std::min(best, channel_service_[l] /
                              (channel_load_coeff_[l] *
                               params_.packet_length_flits));
  }
  return best;
}

std::vector<QueueingModel::SweepPoint> QueueingModel::sweep(
    const std::vector<double>& injection_rates) const {
  std::vector<SweepPoint> points;
  points.reserve(injection_rates.size());
  for (const double rate : injection_rates) {
    const NetworkPerformance perf = evaluate(rate);
    points.push_back({rate, perf.mean_latency_cycles, perf.saturated});
  }
  return points;
}

}  // namespace wi::noc

#include "wi/noc/queueing_model.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "wi/noc/mesh_grid.hpp"

namespace wi::noc {
namespace {

/// Closed-form uniform-traffic channel loads on a regular mesh under
/// dimension-order routing, scaled by `scale` and accumulated into
/// coeff / average-hops. Under X-then-Y-then-Z routing the number of
/// ordered router pairs crossing each link is a product of coordinate
/// ranges — e.g. the +x link at (x,y,z) carries every pair with source
/// x' <= x in the same (y,z) row and destination x' > x anywhere — so
/// the whole load map costs O(channels) instead of O(modules^2) route
/// walks. Each router pair covers c^2 module pairs (c = concentration),
/// each with probability 1/(modules-1). Returns false (accumulating
/// nothing) when the topology/attachment is not eligible.
bool accumulate_uniform_closed_form(const Topology& topology,
                                    const Routing& routing, double scale,
                                    std::vector<double>& coeff,
                                    double& average_hops) {
  if (dynamic_cast<const DimensionOrderRouting*>(&routing) == nullptr) {
    return false;
  }
  if (!MeshGrid::analyze(topology).has_value()) return false;
  const std::size_t routers = topology.router_count();
  const std::size_t modules = topology.module_count();
  if (modules < 2 || routers == 0 || modules % routers != 0) return false;
  const std::size_t c = modules / routers;
  for (std::size_t m = 0; m < modules; ++m) {
    if (topology.module_router(m) != m / c) return false;
  }
  const std::size_t kx = topology.kx();
  const std::size_t ky = topology.ky();
  const std::size_t kz = topology.kz();
  const double c2 = static_cast<double>(c) * static_cast<double>(c);
  const double fan = static_cast<double>(modules - 1);
  double pair_hops = 0.0;  // sum of hops over all ordered router pairs
  for (std::size_t l = 0; l < topology.link_count(); ++l) {
    const Link& link = topology.link(l);
    const Coord& a = topology.coord(link.src);
    const Coord& b = topology.coord(link.dst);
    const std::size_t x = static_cast<std::size_t>(a.x);
    const std::size_t y = static_cast<std::size_t>(a.y);
    const std::size_t z = static_cast<std::size_t>(a.z);
    double pairs;  // ordered router pairs whose DOR route crosses l
    if (b.x == a.x + 1) {
      pairs = static_cast<double>((x + 1) * (kx - 1 - x) * ky * kz);
    } else if (b.x + 1 == a.x) {
      pairs = static_cast<double>((kx - x) * x * ky * kz);
    } else if (b.y == a.y + 1) {
      pairs = static_cast<double>(kx * (y + 1) * (ky - 1 - y) * kz);
    } else if (b.y + 1 == a.y) {
      pairs = static_cast<double>(kx * (ky - y) * y * kz);
    } else if (b.z == a.z + 1) {
      pairs = static_cast<double>(kx * ky * (z + 1) * (kz - 1 - z));
    } else {
      pairs = static_cast<double>(kx * ky * (kz - z) * z);
    }
    coeff[l] += scale * c2 * pairs / fan;
    pair_hops += pairs;
  }
  average_hops += scale * c2 * pair_hops /
                  (static_cast<double>(modules) * fan);
  return true;
}

}  // namespace

QueueingModel::QueueingModel(const Topology& topology, const Routing& routing,
                             const TrafficPattern& traffic,
                             QueueingModelParams params)
    : params_(params),
      channel_count_(topology.link_count()),
      modules_(topology.module_count()) {
  if (traffic.modules() != modules_) {
    throw std::invalid_argument("QueueingModel: traffic/module mismatch");
  }
  channel_load_coeff_.assign(channel_count_, 0.0);
  channel_service_.resize(channel_count_);
  for (std::size_t l = 0; l < channel_count_; ++l) {
    channel_service_[l] =
        params_.channel_efficiency * topology.link(l).bandwidth;
  }
  if (traffic.implicit_form()) {
    build_implicit(topology, routing, traffic);
  } else {
    build_dense(topology, routing, traffic);
  }
}

void QueueingModel::build_dense(const Topology& topology,
                                const Routing& routing,
                                const TrafficPattern& traffic) {
  // Exact per-channel load coefficients: each module injects 1 unit of
  // flits per cycle at lambda = 1, split over destinations by the
  // traffic matrix and mapped onto channels by the routing function.
  const std::size_t modules = modules_;
  const double per_module = 1.0;
  for (std::size_t s = 0; s < modules; ++s) {
    for (std::size_t d = 0; d < modules; ++d) {
      const double p = traffic.probability(s, d);
      if (p <= 0.0 || s == d) continue;
      const Route route = routing.route(topology, topology.module_router(s),
                                        topology.module_router(d));
      PathEntry entry;
      entry.weight = p / static_cast<double>(modules);
      entry.channels = route;
      for (const std::size_t l : route) {
        channel_load_coeff_[l] += per_module * p;
      }
      average_hops_ += entry.weight * static_cast<double>(route.size());
      paths_.push_back(std::move(entry));
    }
  }
}

void QueueingModel::build_implicit(const Topology& topology,
                                   const Routing& routing,
                                   const TrafficPattern& traffic) {
  aggregate_ = true;
  total_weight_ = 1.0;  // every source row sums to 1 analytically
  const std::size_t modules = modules_;
  const double mod = static_cast<double>(modules);

  // Accumulate one module-pair route with probability p: same
  // contribution the dense walk makes, minus the stored path.
  const auto walk = [&](std::size_t s, std::size_t d, double p) {
    const Route route = routing.route(topology, topology.module_router(s),
                                      topology.module_router(d));
    for (const std::size_t l : route) channel_load_coeff_[l] += p;
    average_hops_ += (p / mod) * static_cast<double>(route.size());
  };

  switch (traffic.kind()) {
    case TrafficPatternKind::kTranspose:
    case TrafficPatternKind::kBitComplement:
    case TrafficPatternKind::kTornado:
      // Permutations: one unit-probability route per source.
      for (std::size_t s = 0; s < modules; ++s) {
        walk(s, traffic.permutation_target(s), 1.0);
      }
      return;
    case TrafficPatternKind::kUniform:
      if (accumulate_uniform_closed_form(topology, routing, 1.0,
                                         channel_load_coeff_,
                                         average_hops_)) {
        return;
      }
      break;
    case TrafficPatternKind::kHotspot: {
      // hotspot = (1-f) * uniform + f * hotspot-directed: the directed
      // remainder sends every non-hot source to the hot module and
      // spreads the hot module's own f uniformly, so it costs O(modules)
      // route walks on top of the closed-form uniform base.
      const double f = traffic.hotspot_fraction();
      const std::size_t hot = traffic.hotspot_module();
      if (accumulate_uniform_closed_form(topology, routing, 1.0 - f,
                                         channel_load_coeff_,
                                         average_hops_)) {
        if (f > 0.0) {
          const double fan = static_cast<double>(modules - 1);
          for (std::size_t s = 0; s < modules; ++s) {
            if (s == hot) continue;
            walk(s, hot, f);
            walk(hot, s, f / fan);
          }
        }
        return;
      }
      break;
    }
    case TrafficPatternKind::kDense:
      break;
  }

  // Fallback (irregular topology, non-DOR routing, or non-uniform
  // module attachment): the dense pairwise walk, aggregate-only — still
  // O(channels) memory, no path list.
  for (std::size_t s = 0; s < modules; ++s) {
    for (std::size_t d = 0; d < modules; ++d) {
      const double p = traffic.probability(s, d);
      if (p <= 0.0 || s == d) continue;
      walk(s, d, p);
    }
  }
}

NetworkPerformance QueueingModel::evaluate(double injection_rate) const {
  NetworkPerformance perf;
  if (injection_rate < 0.0) {
    throw std::invalid_argument("QueueingModel: negative injection rate");
  }
  // Per-channel waiting times.
  std::vector<double> wait(channel_count_, 0.0);
  for (std::size_t l = 0; l < channel_count_; ++l) {
    const double lambda = injection_rate * channel_load_coeff_[l] *
                          params_.packet_length_flits;
    const double mu = channel_service_[l];
    const double rho = lambda / mu;
    perf.max_channel_load = std::max(perf.max_channel_load, rho);
    if (rho >= 1.0) {
      perf.saturated = true;
    } else {
      // M/M/1 waiting time in service-time units of this channel.
      wait[l] = rho / (mu * (1.0 - rho));
    }
  }
  if (perf.saturated) {
    perf.mean_latency_cycles = std::numeric_limits<double>::infinity();
    return perf;
  }
  // Traffic-weighted mean path latency.
  const double hop_fixed = params_.router_delay_cycles +
                           params_.link_delay_cycles;
  const double serialization = params_.packet_length_flits - 1.0;
  if (aggregate_) {
    // The same sum the path loop below computes, regrouped by channel:
    // sum over paths of weight * (base + sum over hops of
    // (hop_fixed + wait_l)) = total_weight * base
    // + average_hops * hop_fixed + sum_l wait_l * (coeff_l / modules),
    // because each channel's summed path weight is coeff_l / modules.
    double latency = total_weight_ * (2.0 * params_.local_delay_cycles +
                                      params_.router_delay_cycles +
                                      serialization) +
                     average_hops_ * hop_fixed;
    const double mod = static_cast<double>(modules_);
    for (std::size_t l = 0; l < channel_count_; ++l) {
      latency += wait[l] * (channel_load_coeff_[l] / mod);
    }
    perf.mean_latency_cycles = latency;
    return perf;
  }
  double latency = 0.0;
  for (const PathEntry& path : paths_) {
    double t = 2.0 * params_.local_delay_cycles +  // inject + eject
               params_.router_delay_cycles +       // destination router
               serialization;
    for (const std::size_t l : path.channels) {
      t += hop_fixed + wait[l];
    }
    latency += path.weight * t;
  }
  perf.mean_latency_cycles = latency;
  return perf;
}

double QueueingModel::zero_load_latency_cycles() const {
  return evaluate(0.0).mean_latency_cycles;
}

double QueueingModel::saturation_rate() const {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t l = 0; l < channel_count_; ++l) {
    if (channel_load_coeff_[l] <= 0.0) continue;
    best = std::min(best, channel_service_[l] /
                              (channel_load_coeff_[l] *
                               params_.packet_length_flits));
  }
  return best;
}

std::vector<QueueingModel::SweepPoint> QueueingModel::sweep(
    const std::vector<double>& injection_rates) const {
  std::vector<SweepPoint> points;
  points.reserve(injection_rates.size());
  for (const double rate : injection_rates) {
    const NetworkPerformance perf = evaluate(rate);
    points.push_back({rate, perf.mean_latency_cycles, perf.saturated});
  }
  return points;
}

}  // namespace wi::noc

#include "wi/dsp/peaks.hpp"

#include <gtest/gtest.h>

namespace wi::dsp {
namespace {

TEST(FindPeaks, SinglePeak) {
  const auto peaks = find_peaks({0.0, 1.0, 3.0, 1.0, 0.0}, 0.5, 1);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].index, 2u);
  EXPECT_DOUBLE_EQ(peaks[0].value, 3.0);
}

TEST(FindPeaks, ThresholdFilters) {
  const auto peaks = find_peaks({0.0, 1.0, 0.0, 5.0, 0.0}, 2.0, 1);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].index, 3u);
}

TEST(FindPeaks, MinDistanceSuppressesWeaker) {
  // Two peaks 2 apart; with min_distance 3 only the stronger survives.
  const std::vector<double> x = {0.0, 4.0, 0.0, 5.0, 0.0};
  const auto close = find_peaks(x, 0.5, 3);
  ASSERT_EQ(close.size(), 1u);
  EXPECT_EQ(close[0].index, 3u);
  const auto both = find_peaks(x, 0.5, 1);
  EXPECT_EQ(both.size(), 2u);
}

TEST(FindPeaks, ResultsSortedByIndex) {
  const auto peaks =
      find_peaks({0.0, 9.0, 0.0, 3.0, 0.0, 6.0, 0.0}, 1.0, 1);
  ASSERT_EQ(peaks.size(), 3u);
  EXPECT_LT(peaks[0].index, peaks[1].index);
  EXPECT_LT(peaks[1].index, peaks[2].index);
}

TEST(FindPeaks, EdgesCanBePeaks) {
  const auto peaks = find_peaks({5.0, 1.0, 0.0, 1.0, 6.0}, 0.5, 1);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks.front().index, 0u);
  EXPECT_EQ(peaks.back().index, 4u);
}

TEST(FindPeaks, EmptyAndFlatInputs) {
  EXPECT_TRUE(find_peaks({}, 0.0, 1).empty());
  // A strictly flat line has no local maxima above threshold except via
  // the plateau rule (left >=, right >): only the last plateau sample
  // of a rising edge qualifies; a constant vector yields its final
  // element only if it exceeds min_value and has no right neighbour.
  const auto flat = find_peaks({1.0, 1.0, 1.0}, 2.0, 1);
  EXPECT_TRUE(flat.empty());
}

TEST(Argmax, Basic) {
  EXPECT_EQ(argmax({1.0, 5.0, 3.0}), 1u);
  EXPECT_EQ(argmax({7.0}), 0u);
  EXPECT_EQ(argmax({}), 0u);
}

}  // namespace
}  // namespace wi::dsp

#include "wi/dsp/filter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace wi::dsp {
namespace {

TEST(FirFilter, IdentityTap) {
  const std::vector<double> x = {1.0, -2.0, 3.0};
  const auto y = fir_filter({1.0}, x);
  EXPECT_EQ(y, x);
}

TEST(FirFilter, DelayTap) {
  const auto y = fir_filter({0.0, 1.0}, {1.0, 2.0, 3.0});
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 1.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
}

TEST(FirFilter, MovingAverage) {
  const auto y = fir_filter({0.5, 0.5}, {2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(y[0], 1.0);  // zero initial state
  EXPECT_DOUBLE_EQ(y[1], 3.0);
  EXPECT_DOUBLE_EQ(y[2], 5.0);
}

TEST(Upsample, InsertsZeros) {
  const auto y = upsample({1.0, 2.0}, 3);
  const std::vector<double> expected = {1.0, 0.0, 0.0, 2.0, 0.0, 0.0};
  EXPECT_EQ(y, expected);
}

TEST(Upsample, RejectsZeroFactor) {
  EXPECT_THROW(upsample({1.0}, 0), std::invalid_argument);
}

TEST(Downsample, KeepsEveryFactorth) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 3.0, 4.0, 5.0};
  const auto y = downsample(x, 2);
  const std::vector<double> expected = {0.0, 2.0, 4.0};
  EXPECT_EQ(y, expected);
  const auto y_off = downsample(x, 2, 1);
  const std::vector<double> expected_off = {1.0, 3.0, 5.0};
  EXPECT_EQ(y_off, expected_off);
}

TEST(UpDownSample, RoundTrip) {
  const std::vector<double> x = {3.0, 1.0, 4.0, 1.0, 5.0};
  EXPECT_EQ(downsample(upsample(x, 4), 4), x);
}

TEST(RectangularPulse, AllOnes) {
  const auto p = rectangular_pulse(5);
  ASSERT_EQ(p.size(), 5u);
  for (const double v : p) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(RootRaisedCosine, UnitEnergy) {
  for (const double beta : {0.0, 0.25, 0.5, 1.0}) {
    const auto h = root_raised_cosine(8, 4, beta);
    EXPECT_NEAR(energy(h), 1.0, 1e-9) << "beta=" << beta;
  }
}

TEST(RootRaisedCosine, SymmetricAndPeakCentred) {
  const auto h = root_raised_cosine(6, 5, 0.3);
  const std::size_t n = h.size();
  for (std::size_t i = 0; i < n / 2; ++i) {
    EXPECT_NEAR(h[i], h[n - 1 - i], 1e-10);
  }
  const std::size_t mid = (n - 1) / 2;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LE(h[i], h[mid] + 1e-12);
  }
}

TEST(RootRaisedCosine, RejectsBadRolloff) {
  EXPECT_THROW(root_raised_cosine(4, 4, -0.1), std::invalid_argument);
  EXPECT_THROW(root_raised_cosine(4, 4, 1.1), std::invalid_argument);
}

TEST(NormalizeEnergy, ScalesToUnit) {
  const auto h = normalize_energy({3.0, 4.0});
  EXPECT_NEAR(energy(h), 1.0, 1e-12);
  EXPECT_NEAR(h[0] / h[1], 0.75, 1e-12);  // direction preserved
}

TEST(NormalizeEnergy, ZeroVectorUnchanged) {
  const auto h = normalize_energy({0.0, 0.0});
  EXPECT_DOUBLE_EQ(h[0], 0.0);
  EXPECT_DOUBLE_EQ(h[1], 0.0);
}

}  // namespace
}  // namespace wi::dsp

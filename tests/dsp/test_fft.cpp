#include "wi/dsp/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "wi/common/constants.hpp"
#include "wi/common/rng.hpp"

namespace wi::dsp {
namespace {

std::vector<cplx> naive_dft(const std::vector<cplx>& x) {
  const std::size_t n = x.size();
  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -kTwoPi * static_cast<double>(k) *
                           static_cast<double>(j) / static_cast<double>(n);
      acc += x[j] * cplx(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

TEST(Fft, IsPowerOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(4096));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(4097));
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<cplx> x(8, cplx{0.0, 0.0});
  x[0] = {1.0, 0.0};
  const auto spectrum = fft(x);
  for (const auto& v : spectrum) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  std::vector<cplx> x(n);
  const std::size_t bin = 5;
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = kTwoPi * static_cast<double>(bin) *
                         static_cast<double>(i) / static_cast<double>(n);
    x[i] = {std::cos(angle), std::sin(angle)};
  }
  const auto spectrum = fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == bin) {
      EXPECT_NEAR(std::abs(spectrum[k]), static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(std::abs(spectrum[k]), 0.0, 1e-9);
    }
  }
}

TEST(Fft, MatchesNaiveDftPowerOfTwo) {
  Rng rng(21);
  std::vector<cplx> x(32);
  for (auto& v : x) v = {rng.gaussian(), rng.gaussian()};
  const auto fast = fft(x);
  const auto slow = naive_dft(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(fast[i] - slow[i]), 0.0, 1e-9);
  }
}

TEST(Fft, MatchesNaiveDftArbitraryLength) {
  // Bluestein path: non-power-of-two sizes, including primes.
  for (const std::size_t n : {3u, 7u, 12u, 100u, 129u}) {
    Rng rng(22 + n);
    std::vector<cplx> x(n);
    for (auto& v : x) v = {rng.gaussian(), rng.gaussian()};
    const auto fast = fft(x);
    const auto slow = naive_dft(x);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(std::abs(fast[i] - slow[i]), 0.0, 1e-8) << "n=" << n;
    }
  }
}

TEST(Fft, RoundTripIdentity) {
  for (const std::size_t n : {16u, 100u, 4096u}) {
    Rng rng(23);
    std::vector<cplx> x(n);
    for (auto& v : x) v = {rng.gaussian(), rng.gaussian()};
    const auto back = ifft(fft(x));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(std::abs(back[i] - x[i]), 0.0, 1e-9) << "n=" << n;
    }
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(24);
  std::vector<cplx> x(256);
  for (auto& v : x) v = {rng.gaussian(), rng.gaussian()};
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  const auto spectrum = fft(x);
  double freq_energy = 0.0;
  for (const auto& v : spectrum) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(x.size()), time_energy,
              1e-6);
}

TEST(Fft, EmptyInputPassesThrough) {
  EXPECT_TRUE(fft({}).empty());
  EXPECT_TRUE(ifft({}).empty());
}

TEST(Fft, Radix2RejectsNonPowerOfTwo) {
  std::vector<cplx> x(12);
  EXPECT_THROW(fft_radix2_inplace(x, false), std::invalid_argument);
}

TEST(Convolve, KnownResult) {
  const auto out = convolve({1.0, 2.0, 3.0}, {1.0, 1.0});
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
  EXPECT_DOUBLE_EQ(out[2], 5.0);
  EXPECT_DOUBLE_EQ(out[3], 3.0);
}

TEST(Convolve, EmptyInput) {
  EXPECT_TRUE(convolve({}, {1.0}).empty());
  EXPECT_TRUE(convolve({1.0}, {}).empty());
}

TEST(CircularCorrelation, DeltaPeaksAtLag) {
  // Correlating a sequence with a circularly shifted copy peaks at the
  // shift.
  Rng rng(25);
  const std::size_t n = 64;
  std::vector<cplx> a(n);
  for (auto& v : a) v = {rng.gaussian(), 0.0};
  std::vector<cplx> b(n);
  const std::size_t shift = 10;
  for (std::size_t i = 0; i < n; ++i) b[i] = a[(i + shift) % n];
  const auto corr = circular_correlation(b, a);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (std::abs(corr[i]) > std::abs(corr[peak])) peak = i;
  }
  EXPECT_EQ(peak, n - shift);
}

TEST(CircularCorrelation, RejectsSizeMismatch) {
  EXPECT_THROW(circular_correlation(std::vector<cplx>(4),
                                    std::vector<cplx>(8)),
               std::invalid_argument);
}

}  // namespace
}  // namespace wi::dsp

#include "wi/dsp/window.hpp"

#include <gtest/gtest.h>

namespace wi::dsp {
namespace {

class WindowKindTest : public ::testing::TestWithParam<WindowKind> {};

TEST_P(WindowKindTest, SymmetricAndBounded) {
  const auto w = make_window(GetParam(), 65);
  const std::size_t n = w.size();
  for (std::size_t i = 0; i < n / 2; ++i) {
    EXPECT_NEAR(w[i], w[n - 1 - i], 1e-12);
  }
  for (const double v : w) {
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST_P(WindowKindTest, PeakAtCentre) {
  const auto w = make_window(GetParam(), 33);
  const std::size_t mid = 16;
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(w[i], w[mid] + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, WindowKindTest,
                         ::testing::Values(WindowKind::kRectangular,
                                           WindowKind::kHann,
                                           WindowKind::kHamming,
                                           WindowKind::kBlackman));

TEST(Window, RectangularIsFlat) {
  const auto w = make_window(WindowKind::kRectangular, 10);
  for (const double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Window, HannEndpointsZero) {
  const auto w = make_window(WindowKind::kHann, 21);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[10], 1.0, 1e-12);
}

TEST(Window, HammingEndpointsNonZero) {
  const auto w = make_window(WindowKind::kHamming, 21);
  EXPECT_NEAR(w.front(), 0.08, 1e-12);
}

TEST(Window, DegenerateSizes) {
  EXPECT_TRUE(make_window(WindowKind::kHann, 0).empty());
  const auto one = make_window(WindowKind::kHann, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 1.0);
}

TEST(TimeGate, ZeroesOutsideRange) {
  const auto gated = time_gate({1.0, 2.0, 3.0, 4.0, 5.0}, 1, 3);
  const std::vector<double> expected = {0.0, 2.0, 3.0, 0.0, 0.0};
  EXPECT_EQ(gated, expected);
}

TEST(TimeGate, FullRangeIsIdentity) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  EXPECT_EQ(time_gate(x, 0, 3), x);
}

}  // namespace
}  // namespace wi::dsp

/// \file test_info_rate_golden.cpp
/// \brief Golden-value regression tests for the one-bit information-rate
///        kernels.
///
/// The pinned values were captured from the pre-optimization
/// implementations at fixed seeds; the table-ized/noise-tape rewrite is
/// required to reproduce them. Tolerances are a few orders of magnitude
/// above cross-libm ulp noise but far below any algorithmic change, so
/// a failure here means the kernel's numerics drifted.

#include "wi/comm/info_rate.hpp"

#include <gtest/gtest.h>

#include "wi/comm/filter_design.hpp"

namespace wi::comm {
namespace {

constexpr double kTol = 1e-9;

const Constellation& ask4() {
  static const Constellation c = Constellation::ask(4);
  return c;
}

TEST(InfoRateGolden, SequenceRatePaperFilter) {
  // PhyAbstraction's per-grid-point configuration: 20000 symbols, seed 7.
  const SequenceRateOptions options{20000, 7};
  struct Golden {
    double snr_db;
    double rate;
  };
  const Golden goldens[] = {
      {5.0, 1.2652420307285248},
      {15.0, 1.7936320555226679},
      {25.0, 1.9583489344780356},
  };
  for (const Golden& g : goldens) {
    const OneBitOsChannel channel(paper_filter_sequence(), ask4(), g.snr_db);
    EXPECT_NEAR(info_rate_one_bit_sequence(channel, options), g.rate, kTol)
        << "snr " << g.snr_db;
  }
}

TEST(InfoRateGolden, SequenceRateRectangularFilter) {
  // Span-1 filter exercises the trivial-trellis path of the recursion.
  const OneBitOsChannel channel(IsiFilter::rectangular(5), ask4(), 10.0);
  EXPECT_NEAR(info_rate_one_bit_sequence(channel, {20000, 42}),
              1.1968908090260628, kTol);
}

TEST(InfoRateGolden, SequenceRateRepeatedCallsIdentical) {
  // The memoized noise tape must not change a repeat call's result.
  const OneBitOsChannel channel(paper_filter_sequence(), ask4(), 25.0);
  const double first = info_rate_one_bit_sequence(channel, {20000, 7});
  const double second = info_rate_one_bit_sequence(channel, {20000, 7});
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_NEAR(first, 1.9583489344780356, kTol);
}

TEST(InfoRateGolden, Symbolwise) {
  const OneBitOsChannel at5(paper_filter_symbolwise(), ask4(), 5.0);
  EXPECT_NEAR(mi_one_bit_symbolwise(at5), 1.0351628008476974, kTol);
  const OneBitOsChannel at25(paper_filter_symbolwise(), ask4(), 25.0);
  EXPECT_NEAR(mi_one_bit_symbolwise(at25), 1.6422933197286134, kTol);
}

TEST(InfoRateGolden, ConditionalEntropyRate) {
  const OneBitOsChannel channel(paper_filter_sequence(), ask4(), 25.0);
  EXPECT_NEAR(conditional_entropy_rate(channel), 0.14332043034246245, kTol);
}

}  // namespace
}  // namespace wi::comm

#include "wi/comm/info_rate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "wi/comm/filter_design.hpp"

namespace wi::comm {
namespace {

const Constellation& ask4() {
  static const Constellation c = Constellation::ask(4);
  return c;
}

TEST(UnquantizedMi, ApproachesLog2MAtHighSnr) {
  EXPECT_NEAR(mi_unquantized_awgn(ask4(), 35.0), 2.0, 1e-3);
  EXPECT_NEAR(mi_unquantized_awgn(Constellation::bpsk(), 20.0), 1.0, 1e-3);
}

TEST(UnquantizedMi, VanishesAtVeryLowSnr) {
  EXPECT_LT(mi_unquantized_awgn(ask4(), -30.0), 0.01);
}

TEST(UnquantizedMi, MonotoneInSnr) {
  double prev = 0.0;
  for (double snr = -10.0; snr <= 30.0; snr += 5.0) {
    const double mi = mi_unquantized_awgn(ask4(), snr);
    EXPECT_GE(mi, prev - 1e-9) << "snr " << snr;
    prev = mi;
  }
}

TEST(UnquantizedMi, BelowShannonCapacity) {
  for (double snr = -5.0; snr <= 35.0; snr += 5.0) {
    const double shannon =
        0.5 * std::log2(1.0 + std::pow(10.0, snr / 10.0));
    EXPECT_LE(mi_unquantized_awgn(ask4(), snr), shannon + 1e-6);
  }
}

TEST(OneBitNoOs, CappedAtOneBit) {
  for (double snr = -5.0; snr <= 35.0; snr += 5.0) {
    const double mi = mi_one_bit_no_oversampling(ask4(), snr);
    EXPECT_GE(mi, 0.0);
    EXPECT_LE(mi, 1.0 + 1e-12);
  }
  EXPECT_NEAR(mi_one_bit_no_oversampling(ask4(), 35.0), 1.0, 1e-3);
}

TEST(OneBitNoOs, BpskMatchesBscFormula) {
  // y = sign(x + n): BSC with crossover Q(1/sigma); I = 1 - Hb(eps).
  const double snr_db = 6.0;
  const double sigma = noise_std_for_snr_db(snr_db);
  const double eps = 0.5 * std::erfc(1.0 / sigma / std::sqrt(2.0));
  const double expected =
      1.0 + eps * std::log2(eps) + (1.0 - eps) * std::log2(1.0 - eps);
  EXPECT_NEAR(mi_one_bit_no_oversampling(Constellation::bpsk(), snr_db),
              expected, 1e-9);
}

TEST(SymbolwiseMi, RectAtHighSnrIsOneBit) {
  // All five samples identical -> only the sign survives at high SNR.
  const OneBitOsChannel channel(IsiFilter::rectangular(5), ask4(), 35.0);
  EXPECT_NEAR(mi_one_bit_symbolwise(channel), 1.0, 1e-2);
}

TEST(SymbolwiseMi, RectOversamplingBeatsNoOversamplingAtLowSnr) {
  // At low SNR the five noisy looks carry amplitude information the
  // single look cannot (the paper's stochastic-resonance effect).
  const double snr_db = 3.0;
  const OneBitOsChannel channel(IsiFilter::rectangular(5), ask4(), snr_db);
  EXPECT_GT(mi_one_bit_symbolwise(channel),
            mi_one_bit_no_oversampling(ask4(), snr_db) + 0.02);
}

TEST(SymbolwiseMi, OptimisedFilterBreaksOneBitCeiling) {
  // The Fig. 5(b) design: ISI as dithering lifts the symbolwise rate
  // far above 1 bpcu at the design SNR.
  const OneBitOsChannel channel(paper_filter_symbolwise(), ask4(), 25.0);
  EXPECT_GT(mi_one_bit_symbolwise(channel), 1.5);
}

TEST(SymbolwiseMi, BoundedByTwoBits) {
  for (double snr = -5.0; snr <= 35.0; snr += 10.0) {
    const OneBitOsChannel channel(paper_filter_symbolwise(), ask4(), snr);
    const double mi = mi_one_bit_symbolwise(channel);
    EXPECT_GE(mi, 0.0);
    EXPECT_LE(mi, 2.0 + 1e-9);
  }
}

TEST(ConditionalEntropy, VanishesAtHighSnr) {
  const OneBitOsChannel channel(paper_filter_sequence(), ask4(), 60.0);
  EXPECT_LT(conditional_entropy_rate(channel), 1e-3);
}

TEST(ConditionalEntropy, ApproachesMBitsAtVeryLowSnr) {
  // Noise dominates: each of the 5 samples is a fair coin.
  const OneBitOsChannel channel(paper_filter_sequence(), ask4(), -40.0);
  EXPECT_NEAR(conditional_entropy_rate(channel), 5.0, 1e-2);
}

TEST(UnquantizedMi, MatchedFilterGainIs7dB) {
  // 5 samples collect 5x the energy: the bound equals the plain MI
  // shifted by 10 log10(5) ~ 7 dB.
  EXPECT_NEAR(mi_unquantized_matched_filter(ask4(), 10.0, 5),
              mi_unquantized_awgn(ask4(), 10.0 + 10.0 * std::log10(5.0)),
              1e-12);
  EXPECT_GT(mi_unquantized_matched_filter(ask4(), 0.0, 5),
            mi_unquantized_awgn(ask4(), 0.0));
}

TEST(SequenceRate, ExceedsSymbolwiseForSequenceFilter) {
  // Sequence estimation exploits the ISI linear combinations (the
  // paper's Sec. III conclusion).
  const OneBitOsChannel channel(paper_filter_sequence(), ask4(), 25.0);
  const double seq = info_rate_one_bit_sequence(channel, {40000, 11});
  const double sym = mi_one_bit_symbolwise(channel);
  EXPECT_GT(seq, sym + 0.1);
  EXPECT_GT(seq, 1.8);  // near 2 bpcu at 25 dB (Fig. 6)
}

TEST(SequenceRate, WithinBounds) {
  const OneBitOsChannel channel(paper_filter_sequence(), ask4(), 5.0);
  const double rate = info_rate_one_bit_sequence(channel, {20000, 12});
  EXPECT_GE(rate, 0.0);
  EXPECT_LE(rate, 2.0);
}

TEST(SequenceRate, ReproducibleWithSeed) {
  const OneBitOsChannel channel(paper_filter_sequence(), ask4(), 15.0);
  const double a = info_rate_one_bit_sequence(channel, {10000, 42});
  const double b = info_rate_one_bit_sequence(channel, {10000, 42});
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(SequenceRate, RectMatchesSymbolwiseRect) {
  // With span 1 (no memory) the sequence rate equals the symbolwise MI.
  const OneBitOsChannel channel(IsiFilter::rectangular(5), ask4(), 10.0);
  const double seq = info_rate_one_bit_sequence(channel, {150000, 13});
  const double sym = mi_one_bit_symbolwise(channel);
  EXPECT_NEAR(seq, sym, 0.02);
}

class Fig6OrderingTest : public ::testing::TestWithParam<double> {};

TEST_P(Fig6OrderingTest, CurveOrderingHolds) {
  // At every SNR: no-quantization >= sequence-optimised >= rect 1-bit,
  // and 1-bit no-OS <= 1.0 (Fig. 6's vertical ordering).
  const double snr = GetParam();
  // The valid upper bound for M-fold oversampled receivers is the
  // unquantized matched-filter MI at the block energy.
  const double unq = mi_unquantized_matched_filter(ask4(), snr, 5);
  const OneBitOsChannel seq_ch(paper_filter_sequence(), ask4(), snr);
  const double seq = info_rate_one_bit_sequence(seq_ch, {40000, 14});
  const OneBitOsChannel rect_ch(IsiFilter::rectangular(5), ask4(), snr);
  const double rect = info_rate_one_bit_sequence(rect_ch, {40000, 14});
  EXPECT_GE(unq + 0.05, seq) << "snr " << snr;
  // The 25 dB design may trail the rectangular pulse slightly below its
  // design region; from 10 dB on it must win.
  if (snr >= 10.0) {
    EXPECT_GE(seq + 0.03, rect) << "snr " << snr;
  }
  EXPECT_LE(mi_one_bit_no_oversampling(ask4(), snr), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SnrSweep, Fig6OrderingTest,
                         ::testing::Values(0.0, 10.0, 20.0, 30.0));

}  // namespace
}  // namespace wi::comm

#include "wi/comm/filter_design.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "wi/comm/info_rate.hpp"

namespace wi::comm {
namespace {

const Constellation& ask4() {
  static const Constellation c = Constellation::ask(4);
  return c;
}

TEST(UniqueDetection, RectIsNotUnique) {
  // All samples equal: levels of the same sign are indistinguishable.
  EXPECT_FALSE(is_uniquely_detectable(IsiFilter::rectangular(5), ask4()));
}

TEST(UniqueDetection, SuboptimalPresetIsUnique) {
  EXPECT_TRUE(is_uniquely_detectable(paper_filter_suboptimal(), ask4()));
}

TEST(UniqueDetection, BpskRectIsUnique) {
  // Two antipodal levels: the sign alone identifies the symbol.
  EXPECT_TRUE(is_uniquely_detectable(IsiFilter::rectangular(5),
                                     Constellation::bpsk()));
}

TEST(UniqueDetection, OneFoldOversamplingCannotSeparateFourLevels) {
  // The paper: 5-fold oversampling was found to be the smallest rate
  // enabling unique detection for 4-ASK. With M = 1 it is impossible
  // for any single-span filter (only the sign is seen).
  const IsiFilter one_sample({1.0}, 1);
  EXPECT_FALSE(is_uniquely_detectable(one_sample, ask4()));
}

TEST(NoiseFreeMargin, RectMarginIsSmallestLevel) {
  const double margin =
      noise_free_margin(IsiFilter::rectangular(5), ask4());
  EXPECT_NEAR(margin, 1.0 / std::sqrt(5.0), 1e-9);
}

TEST(NoiseFreeMargin, PositiveForPresets) {
  EXPECT_GT(noise_free_margin(paper_filter_suboptimal(), ask4()), 0.0);
  EXPECT_GT(noise_free_margin(paper_filter_sequence(), ask4()), 0.0);
}

TEST(Presets, NormalisedToPowerConstraint) {
  EXPECT_NEAR(paper_filter_symbolwise().energy(), 5.0, 1e-9);
  EXPECT_NEAR(paper_filter_sequence().energy(), 5.0, 1e-9);
  EXPECT_NEAR(paper_filter_suboptimal().energy(), 5.0, 1e-9);
}

TEST(Presets, MatchFig6Levels) {
  // The pre-optimised designs must reproduce the Fig. 6 operating
  // points at the 25 dB design SNR.
  const OneBitOsChannel sym(paper_filter_symbolwise(), ask4(), 25.0);
  EXPECT_GT(mi_one_bit_symbolwise(sym), 1.55);
  const OneBitOsChannel seq(paper_filter_sequence(), ask4(), 25.0);
  EXPECT_GT(info_rate_one_bit_sequence(seq, {40000, 21}), 1.85);
}

TEST(Optimizer, SymbolwiseImprovesOnRect) {
  FilterDesignOptions options;
  options.max_evals = 400;  // small budget: just has to beat rect
  options.restarts = 1;
  const IsiFilter optimised = optimize_filter_symbolwise(ask4(), options);
  const OneBitOsChannel ch_opt(optimised, ask4(), 25.0);
  const OneBitOsChannel ch_rect(IsiFilter::rectangular(5), ask4(), 25.0);
  EXPECT_GT(mi_one_bit_symbolwise(ch_opt),
            mi_one_bit_symbolwise(ch_rect) + 0.1);
}

TEST(Optimizer, SuboptimalDesignAchievesUniqueness) {
  FilterDesignOptions options;
  options.max_evals = 1500;
  options.restarts = 2;
  const IsiFilter designed = design_filter_suboptimal(ask4(), options);
  EXPECT_TRUE(is_uniquely_detectable(designed, ask4()));
  EXPECT_GT(noise_free_margin(designed, ask4()), 0.0);
}

TEST(Optimizer, RespectsConfiguredShape) {
  FilterDesignOptions options;
  options.samples_per_symbol = 3;
  options.span_symbols = 2;
  options.max_evals = 200;
  options.restarts = 1;
  const IsiFilter f = optimize_filter_symbolwise(ask4(), options);
  EXPECT_EQ(f.samples_per_symbol(), 3u);
  EXPECT_EQ(f.span_symbols(), 2u);
  EXPECT_NEAR(f.energy(), 3.0, 1e-9);
}

}  // namespace
}  // namespace wi::comm

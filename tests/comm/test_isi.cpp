#include "wi/comm/isi.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wi::comm {
namespace {

TEST(IsiFilter, NormalisedEnergyEqualsM) {
  // The power constraint ||h||^2 = M keeps the SNR definition
  // filter-independent.
  const IsiFilter f({1.0, 2.0, 3.0, 4.0, 5.0, 0.5, 0.5, 0.5, 0.5, 0.5}, 5);
  EXPECT_NEAR(f.energy(), 5.0, 1e-12);
}

TEST(IsiFilter, RectangularProperties) {
  const IsiFilter rect = IsiFilter::rectangular(5);
  EXPECT_EQ(rect.samples_per_symbol(), 5u);
  EXPECT_EQ(rect.span_symbols(), 1u);
  for (std::size_t m = 0; m < 5; ++m) {
    EXPECT_NEAR(rect.slice(0, m), 1.0, 1e-12);
  }
}

TEST(IsiFilter, SliceIndexing) {
  const IsiFilter f({1.0, 2.0, 3.0, 4.0, 5.0, 6.0}, 3, /*normalize=*/false);
  EXPECT_EQ(f.span_symbols(), 2u);
  EXPECT_DOUBLE_EQ(f.slice(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(f.slice(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(f.slice(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(f.slice(1, 2), 6.0);
}

TEST(IsiFilter, NoiselessSampleSuperposition) {
  const IsiFilter f({1.0, 0.0, 0.5, 0.25, 0.0, 0.0}, 3, false);
  // z_m = x_t g0[m] + x_{t-1} g1[m].
  EXPECT_DOUBLE_EQ(f.noiseless_sample({2.0, 4.0}, 0), 2.0 * 1.0 + 4.0 * 0.25);
  EXPECT_DOUBLE_EQ(f.noiseless_sample({2.0, 4.0}, 2), 2.0 * 0.5);
}

TEST(IsiFilter, NoiselessSampleRejectsWrongWindow) {
  const IsiFilter f = IsiFilter::rectangular(5);
  EXPECT_THROW((void)f.noiseless_sample({1.0, 2.0}, 0), std::invalid_argument);
}

TEST(IsiFilter, RejectsBadConstruction) {
  EXPECT_THROW(IsiFilter({}, 5), std::invalid_argument);
  EXPECT_THROW(IsiFilter({1.0, 2.0, 3.0}, 2), std::invalid_argument);
  EXPECT_THROW(IsiFilter({1.0}, 0), std::invalid_argument);
  EXPECT_THROW(IsiFilter({0.0, 0.0}, 2), std::invalid_argument);  // zero
}

TEST(ModulateWaveform, RectIsZeroOrderHold) {
  const IsiFilter rect = IsiFilter::rectangular(3);
  const auto wave = modulate_waveform(rect, {1.0, -2.0});
  ASSERT_EQ(wave.size(), 6u);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(wave[i], 1.0, 1e-12);
  for (int i = 3; i < 6; ++i) EXPECT_NEAR(wave[i], -2.0, 1e-12);
}

TEST(ModulateWaveform, OverlapAddsAcrossSymbols) {
  // Span-2 filter: second symbol block sees the first symbol through g1.
  const IsiFilter f({1.0, 1.0, 0.5, 0.5}, 2, false);
  const auto wave = modulate_waveform(f, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(wave[2], 1.0 + 0.5);
  EXPECT_DOUBLE_EQ(wave[3], 1.0 + 0.5);
}

TEST(ModulateWaveform, MatchesNoiselessSampleAfterWarmup) {
  const IsiFilter f({0.9, -0.2, 0.4, 0.1, 0.3, -0.05}, 2, false);
  const std::vector<double> symbols = {1.0, -1.0, 3.0, 2.0};
  const auto wave = modulate_waveform(f, symbols);
  // Symbol index 2 (fully warmed up, span 3).
  const std::vector<double> window = {3.0, -1.0, 1.0};
  for (std::size_t m = 0; m < 2; ++m) {
    EXPECT_NEAR(wave[2 * 2 + m], f.noiseless_sample(window, m), 1e-12);
  }
}

}  // namespace
}  // namespace wi::comm

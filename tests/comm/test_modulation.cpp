#include "wi/comm/modulation.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wi::comm {
namespace {

TEST(Constellation, Ask4LevelsNormalised) {
  const Constellation c = Constellation::ask(4);
  ASSERT_EQ(c.order(), 4u);
  // Regular 4-ASK {-3,-1,1,3}/sqrt(5).
  const double s = 1.0 / std::sqrt(5.0);
  EXPECT_NEAR(c.level(0), -3.0 * s, 1e-12);
  EXPECT_NEAR(c.level(1), -1.0 * s, 1e-12);
  EXPECT_NEAR(c.level(2), 1.0 * s, 1e-12);
  EXPECT_NEAR(c.level(3), 3.0 * s, 1e-12);
}

TEST(Constellation, UnitAverageEnergy) {
  for (const std::size_t order : {2u, 4u, 8u, 16u}) {
    EXPECT_NEAR(Constellation::ask(order).average_energy(), 1.0, 1e-12)
        << "order " << order;
  }
}

TEST(Constellation, BpskIsAntipodal) {
  const Constellation c = Constellation::bpsk();
  ASSERT_EQ(c.order(), 2u);
  EXPECT_NEAR(c.level(0), -1.0, 1e-12);
  EXPECT_NEAR(c.level(1), 1.0, 1e-12);
}

TEST(Constellation, BitsPerSymbol) {
  EXPECT_DOUBLE_EQ(Constellation::ask(4).bits_per_symbol(), 2.0);
  EXPECT_DOUBLE_EQ(Constellation::ask(8).bits_per_symbol(), 3.0);
}

TEST(Constellation, NearestDecision) {
  const Constellation c = Constellation::ask(4);
  EXPECT_EQ(c.nearest(-10.0), 0u);
  EXPECT_EQ(c.nearest(10.0), 3u);
  EXPECT_EQ(c.nearest(c.level(1) + 0.01), 1u);
  EXPECT_EQ(c.nearest(0.5 * (c.level(1) + c.level(2)) + 1e-6), 2u);
}

TEST(Constellation, CustomLevelsNormalised) {
  const Constellation c(std::vector<double>{-2.0, 0.0, 2.0});
  EXPECT_NEAR(c.average_energy(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(c.level(1), 0.0);
}

TEST(Constellation, RejectsEmptyAndBadOrder) {
  EXPECT_THROW(Constellation(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(Constellation::ask(1), std::invalid_argument);
  EXPECT_THROW(Constellation::ask(0), std::invalid_argument);
}

TEST(Constellation, LevelsStrictlyIncreasing) {
  const Constellation c = Constellation::ask(8);
  for (std::size_t i = 1; i < c.order(); ++i) {
    EXPECT_GT(c.level(i), c.level(i - 1));
  }
}

}  // namespace
}  // namespace wi::comm

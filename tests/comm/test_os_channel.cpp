#include "wi/comm/os_channel.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wi::comm {
namespace {

OneBitOsChannel make_channel(double snr_db) {
  return OneBitOsChannel(IsiFilter::rectangular(5), Constellation::ask(4),
                         snr_db);
}

TEST(OsChannel, NoiseStdFromSnr) {
  EXPECT_NEAR(noise_std_for_snr_db(0.0), 1.0, 1e-12);
  EXPECT_NEAR(noise_std_for_snr_db(20.0), 0.1, 1e-12);
  EXPECT_NEAR(noise_std_for_snr_db(-20.0), 10.0, 1e-12);
}

TEST(OsChannel, StateCountFollowsSpan) {
  EXPECT_EQ(make_channel(10.0).state_count(), 1u);  // span 1
  const IsiFilter span3(std::vector<double>(15, 0.3), 5);
  const OneBitOsChannel channel(span3, Constellation::ask(4), 10.0);
  EXPECT_EQ(channel.state_count(), 16u);  // 4^(3-1)
}

TEST(OsChannel, SampleOneProbLimits) {
  const OneBitOsChannel channel = make_channel(20.0);
  EXPECT_NEAR(channel.sample_one_prob(0.0), 0.5, 1e-12);
  EXPECT_GT(channel.sample_one_prob(1.0), 0.999);
  EXPECT_LT(channel.sample_one_prob(-1.0), 0.001);
}

TEST(OsChannel, BlockProbsSumToOne) {
  const IsiFilter f({0.8, 1.2, -0.4, 0.6, 0.9, 0.1, -0.3, 0.2, 0.5, -0.1},
                    5);
  const OneBitOsChannel channel(f, Constellation::ask(4), 8.0);
  for (const auto& window : channel.all_windows()) {
    double total = 0.0;
    for (std::uint32_t pattern = 0; pattern < 32; ++pattern) {
      total += channel.block_prob(pattern, window);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(OsChannel, NoiselessBlockMatchesFilter) {
  const IsiFilter f = IsiFilter::rectangular(5);
  const OneBitOsChannel channel(f, Constellation::ask(4), 10.0);
  const auto z = channel.noiseless_block({3});
  const double level = Constellation::ask(4).level(3);
  for (const double v : z) EXPECT_NEAR(v, level, 1e-12);
}

TEST(OsChannel, AllWindowsEnumeration) {
  const IsiFilter span2(std::vector<double>(10, 0.4), 5);
  const OneBitOsChannel channel(span2, Constellation::ask(4), 10.0);
  const auto windows = channel.all_windows();
  EXPECT_EQ(windows.size(), 16u);  // 4^2
  // Every window distinct.
  for (std::size_t i = 0; i < windows.size(); ++i) {
    for (std::size_t j = i + 1; j < windows.size(); ++j) {
      EXPECT_NE(windows[i], windows[j]);
    }
  }
}

TEST(OsChannel, SimulateDeterministicGivenSeed) {
  const OneBitOsChannel channel = make_channel(10.0);
  Rng rng_a(5);
  Rng rng_b(5);
  const auto a = channel.simulate(500, rng_a);
  const auto b = channel.simulate(500, rng_b);
  EXPECT_EQ(a.symbols, b.symbols);
  EXPECT_EQ(a.patterns, b.patterns);
}

TEST(OsChannel, HighSnrRectPatternsAreSignConsistent) {
  // At 40 dB SNR the rectangular pulse gives all-ones for positive
  // levels and all-zeros for negative ones.
  const OneBitOsChannel channel = make_channel(40.0);
  Rng rng(6);
  const auto sim = channel.simulate(2000, rng);
  for (std::size_t t = 0; t < sim.symbols.size(); ++t) {
    const double level = channel.constellation().level(sim.symbols[t]);
    EXPECT_EQ(sim.patterns[t], level > 0.0 ? 0x1Fu : 0x0u) << "t=" << t;
  }
}

TEST(OsChannel, SymbolsUniform) {
  const OneBitOsChannel channel = make_channel(10.0);
  Rng rng(7);
  const auto sim = channel.simulate(40000, rng);
  std::vector<int> counts(4, 0);
  for (const auto s : sim.symbols) ++counts[s];
  for (const int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(OsChannel, RejectsHugeOversampling) {
  const IsiFilter f(std::vector<double>(32, 0.2), 32);
  EXPECT_THROW(OneBitOsChannel(f, Constellation::ask(4), 10.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace wi::comm

#include "wi/comm/adc.hpp"

#include <gtest/gtest.h>

#include "wi/comm/info_rate.hpp"

namespace wi::comm {
namespace {

TEST(UniformQuantizer, LevelsAndEdges) {
  const UniformQuantizer q(2, 2.0);  // 4 levels over [-2, 2], step 1
  EXPECT_EQ(q.level_count(), 4u);
  EXPECT_DOUBLE_EQ(q.value(0), -1.5);
  EXPECT_DOUBLE_EQ(q.value(3), 1.5);
  EXPECT_DOUBLE_EQ(q.lower_edge(2), 0.0);
}

TEST(UniformQuantizer, IndexMapping) {
  const UniformQuantizer q(2, 2.0);
  EXPECT_EQ(q.index(-5.0), 0u);   // clipped low
  EXPECT_EQ(q.index(-1.5), 0u);
  EXPECT_EQ(q.index(-0.5), 1u);
  EXPECT_EQ(q.index(0.5), 2u);
  EXPECT_EQ(q.index(5.0), 3u);    // clipped high
}

TEST(UniformQuantizer, RoundTripWithinHalfStep) {
  const UniformQuantizer q(4, 2.0);
  for (double x = -1.9; x <= 1.9; x += 0.13) {
    EXPECT_NEAR(q.value(q.index(x)), x, 0.125 + 1e-12);
  }
}

TEST(UniformQuantizer, RejectsBadConfig) {
  EXPECT_THROW(UniformQuantizer(0), std::invalid_argument);
  EXPECT_THROW(UniformQuantizer(17), std::invalid_argument);
  EXPECT_THROW(UniformQuantizer(4, 0.0), std::invalid_argument);
}

TEST(QuantizedMi, OneBitMatchesDedicatedFormula) {
  // A 1-bit quantizer with threshold at zero reproduces
  // mi_one_bit_no_oversampling.
  const Constellation c4 = Constellation::ask(4);
  const UniformQuantizer q(1, 4.0);
  for (const double snr : {0.0, 10.0, 25.0}) {
    EXPECT_NEAR(mi_quantized_awgn(c4, q, snr),
                mi_one_bit_no_oversampling(c4, snr), 1e-9)
        << "snr " << snr;
  }
}

TEST(QuantizedMi, MoreBitsNeverHurt) {
  const Constellation c4 = Constellation::ask(4);
  for (const double snr : {5.0, 15.0, 25.0}) {
    double prev = 0.0;
    for (const std::size_t bits : {1u, 2u, 3u, 4u, 6u}) {
      const double mi = mi_quantized_awgn(c4, UniformQuantizer(bits), snr);
      EXPECT_GE(mi, prev - 1e-9) << "bits " << bits << " snr " << snr;
      prev = mi;
    }
  }
}

TEST(QuantizedMi, ManyBitsApproachUnquantized) {
  const Constellation c4 = Constellation::ask(4);
  const double snr = 18.0;
  const double fine = mi_quantized_awgn(c4, UniformQuantizer(8, 4.0), snr);
  EXPECT_NEAR(fine, mi_unquantized_awgn(c4, snr), 0.01);
}

TEST(QuantizedMi, ThreeBitsResolveFourAskAtHighSnr) {
  // Sec. III's premise inverted: a 3-bit Nyquist ADC reaches ~2 bpcu at
  // high SNR where the 1-bit one is stuck at 1.
  const Constellation c4 = Constellation::ask(4);
  EXPECT_GT(mi_quantized_awgn(c4, UniformQuantizer(3), 30.0), 1.95);
  EXPECT_LT(mi_quantized_awgn(c4, UniformQuantizer(1), 30.0), 1.01);
}

TEST(AdcModel, WaldenScaling) {
  const AdcModel adc{50e-15};
  // Doubling the rate doubles power; +1 bit doubles power.
  EXPECT_NEAR(adc.power_w(4, 50e9) / adc.power_w(4, 25e9), 2.0, 1e-12);
  EXPECT_NEAR(adc.power_w(5, 25e9) / adc.power_w(4, 25e9), 2.0, 1e-12);
  // 1-bit at 125 GS/s: 50f * 2 * 125e9 = 12.5 mW.
  EXPECT_NEAR(adc.power_w(1, 125e9), 12.5e-3, 1e-9);
}

TEST(AdcModel, EnergyPerSample) {
  const AdcModel adc{50e-15};
  EXPECT_NEAR(adc.energy_per_sample_j(1, 125e9), 100e-15, 1e-20);
  EXPECT_THROW((void)adc.energy_per_sample_j(1, 0.0), std::invalid_argument);
}

TEST(AdcEnergyPerBit, OneBitOversamplingWins) {
  // The Sec. III argument: at 25 GBd, a 1-bit ADC at 5x oversampling
  // spends less ADC energy per information bit than an 8-bit Nyquist
  // converter, despite the lower spectral efficiency.
  const AdcModel adc{50e-15};
  const double symbol_rate = 25e9;
  const ReceiverOption one_bit{"1bit-5xOS", 1, 5, 1.9};
  const ReceiverOption eight_bit{"8bit-Nyquist", 8, 1, 2.0};
  EXPECT_LT(adc_energy_per_bit_j(adc, one_bit, symbol_rate),
            adc_energy_per_bit_j(adc, eight_bit, symbol_rate));
}

TEST(AdcEnergyPerBit, RejectsZeroRate) {
  const AdcModel adc;
  const ReceiverOption bad{"x", 1, 1, 0.0};
  EXPECT_THROW((void)adc_energy_per_bit_j(adc, bad, 1e9), std::invalid_argument);
}

}  // namespace
}  // namespace wi::comm

#include "wi/comm/detectors.hpp"

#include <gtest/gtest.h>

#include "wi/comm/filter_design.hpp"

namespace wi::comm {
namespace {

TEST(SymbolwiseDetector, RectHighSnrDetectsSign) {
  // Rect pulse at high SNR: patterns are all-ones/all-zeros; the
  // detector can only recover the sign — it must pick a positive level
  // for 0x1F and a negative one for 0x00.
  const OneBitOsChannel channel(IsiFilter::rectangular(5),
                                Constellation::ask(4), 40.0);
  const SymbolwiseDetector detector(channel);
  EXPECT_GE(channel.constellation().level(detector.detect(0x1F)), 0.0);
  EXPECT_LE(channel.constellation().level(detector.detect(0x00)), 0.0);
}

TEST(SymbolwiseDetector, OptimisedFilterLowSer) {
  const OneBitOsChannel channel(paper_filter_symbolwise(),
                                Constellation::ask(4), 25.0);
  const SerResult result = simulate_ser_symbolwise(channel, 20000, 101);
  // With 1.64 bpcu achievable, the hard-decision SER should be modest.
  EXPECT_LT(result.ser, 0.25);
  EXPECT_GT(result.symbols, 15000u);
}

TEST(SymbolwiseDetector, SerDecreasesWithSnr) {
  const Constellation c4 = Constellation::ask(4);
  const IsiFilter f = paper_filter_symbolwise();
  double prev = 1.0;
  for (const double snr : {5.0, 15.0, 25.0}) {
    const OneBitOsChannel channel(f, c4, snr);
    const double ser = simulate_ser_symbolwise(channel, 20000, 102).ser;
    EXPECT_LE(ser, prev + 0.02) << "snr " << snr;
    prev = ser;
  }
}

TEST(ViterbiDetector, PerfectAtVeryHighSnrWithUniqueFilter) {
  // The suboptimal design guarantees unique noise-free detection, so
  // Viterbi at very high SNR is error-free.
  const OneBitOsChannel channel(paper_filter_suboptimal(),
                                Constellation::ask(4), 45.0);
  const SerResult result = simulate_ser_viterbi(channel, 5000, 103);
  EXPECT_EQ(result.errors, 0u);
}

TEST(ViterbiDetector, BeatsSymbolwiseOnSequenceFilter) {
  const OneBitOsChannel channel(paper_filter_sequence(),
                                Constellation::ask(4), 20.0);
  const double viterbi = simulate_ser_viterbi(channel, 30000, 104).ser;
  const double symbolwise =
      simulate_ser_symbolwise(channel, 30000, 104).ser;
  EXPECT_LT(viterbi, symbolwise);
}

TEST(ViterbiDetector, DecodesKnownNoiselessSequence) {
  // Push a noise-free pattern sequence through the detector and check
  // the input comes back (suboptimal filter => unique).
  const OneBitOsChannel channel(paper_filter_suboptimal(),
                                Constellation::ask(4), 60.0);
  Rng rng(7);
  const auto sim = channel.simulate(300, rng);
  const ViterbiDetector detector(channel);
  const auto decisions = detector.detect(sim.patterns);
  std::size_t errors = 0;
  for (std::size_t t = 3; t + 3 < decisions.size(); ++t) {
    if (decisions[t] != sim.symbols[t]) ++errors;
  }
  EXPECT_EQ(errors, 0u);
}

TEST(SerSimulation, CountsExcludeEdges) {
  const OneBitOsChannel channel(paper_filter_sequence(),
                                Constellation::ask(4), 20.0);
  const SerResult result = simulate_ser_viterbi(channel, 1000, 105);
  EXPECT_LT(result.symbols, 1000u);
  EXPECT_GE(result.symbols, 1000u - 2 * 3);  // span-3 edges trimmed
}

TEST(SerSimulation, DeterministicWithSeed) {
  const OneBitOsChannel channel(paper_filter_symbolwise(),
                                Constellation::ask(4), 15.0);
  const SerResult a = simulate_ser_symbolwise(channel, 5000, 42);
  const SerResult b = simulate_ser_symbolwise(channel, 5000, 42);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.symbols, b.symbols);
}

}  // namespace
}  // namespace wi::comm

#include "wi/serve/hot_tier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace wi::serve {
namespace {

[[nodiscard]] HotTier::ResultPtr make_result(const std::string& name,
                                             Status status = Status::ok()) {
  auto result = std::make_shared<sim::RunResult>();
  result->scenario = name;
  result->status = std::move(status);
  return result;
}

TEST(HotTier, LeadThenHit) {
  HotTier tier;
  const auto lead = tier.acquire("k1");
  EXPECT_EQ(lead.tier, HotTier::Tier::kLead);
  tier.fulfill("k1", make_result("one"));
  const auto hit = tier.acquire("k1");
  ASSERT_EQ(hit.tier, HotTier::Tier::kHot);
  EXPECT_EQ(hit.cached->scenario, "one");
  EXPECT_EQ(tier.hits(), 1u);
  EXPECT_EQ(tier.leads(), 1u);
}

TEST(HotTier, InflightJoinGetsTheLeadersResult) {
  HotTier tier;
  const auto lead = tier.acquire("k");
  ASSERT_EQ(lead.tier, HotTier::Tier::kLead);
  auto join1 = tier.acquire("k");
  auto join2 = tier.acquire("k");
  ASSERT_EQ(join1.tier, HotTier::Tier::kInflight);
  ASSERT_EQ(join2.tier, HotTier::Tier::kInflight);
  tier.fulfill("k", make_result("value"));
  // Both joiners share the one future (get_future is one-shot; the
  // shared future is created at leadership time).
  EXPECT_EQ(join1.future.get()->scenario, "value");
  EXPECT_EQ(join2.future.get()->scenario, "value");
  EXPECT_EQ(tier.coalesced(), 2u);
}

TEST(HotTier, LruEvictsTheColdestEntry) {
  HotTier tier(HotTier::Options{2});
  for (const char* key : {"a", "b"}) {
    const auto lead = tier.acquire(key);
    ASSERT_EQ(lead.tier, HotTier::Tier::kLead);
    tier.fulfill(key, make_result(key));
  }
  // Touch "a" so "b" becomes the LRU victim.
  ASSERT_EQ(tier.acquire("a").tier, HotTier::Tier::kHot);
  const auto lead_c = tier.acquire("c");
  ASSERT_EQ(lead_c.tier, HotTier::Tier::kLead);
  tier.fulfill("c", make_result("c"));
  EXPECT_EQ(tier.size(), 2u);
  EXPECT_EQ(tier.evictions(), 1u);
  EXPECT_NE(tier.peek("a"), nullptr);
  EXPECT_EQ(tier.peek("b"), nullptr);  // evicted
  EXPECT_NE(tier.peek("c"), nullptr);
}

TEST(HotTier, FailuresAreDeliveredButNeverCached) {
  HotTier tier;
  const auto lead = tier.acquire("bad");
  ASSERT_EQ(lead.tier, HotTier::Tier::kLead);
  auto join = tier.acquire("bad");
  tier.fulfill("bad",
               make_result("bad", Status(StatusCode::kExecutionError,
                                         "boom")));
  EXPECT_EQ(join.future.get()->status.code(),
            StatusCode::kExecutionError);
  // The failure reached the waiter but the next acquire must lead
  // again (failed results re-run).
  EXPECT_EQ(tier.peek("bad"), nullptr);
  const auto lead2 = tier.acquire("bad");
  EXPECT_EQ(lead2.tier, HotTier::Tier::kLead);
  tier.fulfill("bad", make_result("bad"));
}

TEST(HotTier, BackpressureFulfillReleasesWaiters) {
  HotTier tier;
  const auto lead = tier.acquire("k");
  ASSERT_EQ(lead.tier, HotTier::Tier::kLead);
  auto join = tier.acquire("k");
  // Leader's enqueue was rejected: it fulfills with kUnavailable.
  tier.fulfill("k", make_result("k", Status(StatusCode::kUnavailable,
                                            "queue full")));
  EXPECT_EQ(join.future.get()->status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(tier.size(), 0u);
}

TEST(HotTier, SingleFlightUnderConcurrency) {
  // Many threads race on the same key: exactly one must lead, the rest
  // must either join the flight or (after fulfill) hit the LRU.
  constexpr int kThreads = 16;
  HotTier tier;
  std::atomic<int> leads{0};
  std::atomic<int> served{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      auto ticket = tier.acquire("contested");
      switch (ticket.tier) {
        case HotTier::Tier::kLead:
          leads.fetch_add(1);
          tier.fulfill("contested", make_result("contested"));
          served.fetch_add(1);
          break;
        case HotTier::Tier::kInflight:
          if (ticket.future.get() != nullptr) served.fetch_add(1);
          break;
        case HotTier::Tier::kHot:
          if (ticket.cached != nullptr) served.fetch_add(1);
          break;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(leads.load(), 1);
  EXPECT_EQ(served.load(), kThreads);
  EXPECT_EQ(tier.insertions(), 1u);
}

TEST(HotTier, DistinctKeysDoNotCoalesce) {
  HotTier tier;
  const auto lead_x = tier.acquire("x");
  const auto lead_y = tier.acquire("y");
  EXPECT_EQ(lead_x.tier, HotTier::Tier::kLead);
  EXPECT_EQ(lead_y.tier, HotTier::Tier::kLead);
  tier.fulfill("x", make_result("x"));
  tier.fulfill("y", make_result("y"));
  EXPECT_EQ(tier.size(), 2u);
  EXPECT_EQ(tier.coalesced(), 0u);
}

TEST(HotTier, AbandonedLeadReleasesWaitersAndFreesTheKey) {
  HotTier tier;
  HotTier::Ticket join;
  {
    const auto lead = tier.acquire("k");
    ASSERT_EQ(lead.tier, HotTier::Tier::kLead);
    join = tier.acquire("k");
    ASSERT_EQ(join.tier, HotTier::Tier::kInflight);
    // lead goes out of scope without fulfill(): the guard fires.
  }
  const auto result = join.future.get();
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->status.code(), StatusCode::kExecutionError);
  EXPECT_EQ(tier.abandoned(), 1u);
  // The error is delivered, never cached, and the key is not wedged:
  // the next acquire leads a fresh build.
  EXPECT_EQ(tier.peek("k"), nullptr);
  const auto lead2 = tier.acquire("k");
  EXPECT_EQ(lead2.tier, HotTier::Tier::kLead);
  tier.fulfill("k", make_result("k"));
  EXPECT_NE(tier.peek("k"), nullptr);
}

TEST(HotTier, MovingALeadTicketKeepsTheGuardArmedOnce) {
  HotTier tier;
  {
    auto lead = tier.acquire("k");
    ASSERT_EQ(lead.tier, HotTier::Tier::kLead);
    HotTier::Ticket moved = std::move(lead);
    // The moved-from ticket is disarmed; destroying it must not
    // abandon the flight `moved` still guards.
  }
  EXPECT_EQ(tier.abandoned(), 1u);
}

TEST(HotTier, FulfilledLeadTicketDestructorIsANoOp) {
  HotTier tier;
  {
    const auto lead = tier.acquire("k");
    ASSERT_EQ(lead.tier, HotTier::Tier::kLead);
    tier.fulfill("k", make_result("k"));
    // lead destroyed after fulfill: guard must not fire, and must not
    // poison the cached entry.
  }
  EXPECT_EQ(tier.abandoned(), 0u);
  ASSERT_NE(tier.peek("k"), nullptr);
  EXPECT_EQ(tier.acquire("k").tier, HotTier::Tier::kHot);
}

}  // namespace
}  // namespace wi::serve

/// FaultInjector unit tests: per-stream verdict sequences are a pure
/// function of (seed, stream, index) — independent of thread
/// interleaving — rates are honored empirically, and validation rejects
/// out-of-range options.

#include "wi/serve/fault_injector.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "wi/common/fault.hpp"

namespace wi::serve {
namespace {

TEST(FaultInjectorOptions, EnabledOnlyWithAPositiveRate) {
  FaultInjectorOptions options;
  EXPECT_FALSE(options.enabled());
  options.conn_stall_rate = 0.01;
  EXPECT_TRUE(options.enabled());
}

TEST(FaultInjectorOptions, ValidationRejectsBadRatesAndDelays) {
  FaultInjectorOptions options;
  EXPECT_TRUE(options.validate().is_ok());
  options.store_fail_rate = -0.1;
  EXPECT_EQ(options.validate().code(), StatusCode::kInvalidSpec);
  options.store_fail_rate = 1.1;
  EXPECT_EQ(options.validate().code(), StatusCode::kInvalidSpec);
  options.store_fail_rate = 1.0;
  EXPECT_TRUE(options.validate().is_ok());
  options.delay_ms = -1.0;
  EXPECT_EQ(options.validate().code(), StatusCode::kInvalidSpec);
}

TEST(FaultInjector, VerdictSequenceMatchesTheDerivationChain) {
  FaultInjectorOptions options;
  options.store_fail_rate = 0.3;
  options.seed = 777;
  FaultInjector injector(options);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const bool expected = fault::decide(777, fault::Stream::kStoreFail,
                                        i, 0.3);
    EXPECT_EQ(injector.store_fail(), expected) << "event " << i;
  }
}

TEST(FaultInjector, StreamsAreIndependent) {
  // Interleaving calls on other streams must not shift a stream's own
  // event indices: the i-th conn_drop verdict is the same whether or
  // not store hooks ran in between.
  FaultInjectorOptions options;
  options.store_fail_rate = 0.5;
  options.conn_drop_rate = 0.5;
  options.seed = 42;

  std::vector<bool> solo;
  {
    FaultInjector injector(options);
    for (int i = 0; i < 100; ++i) solo.push_back(injector.conn_drop());
  }
  FaultInjector interleaved(options);
  for (int i = 0; i < 100; ++i) {
    (void)interleaved.store_fail();
    (void)interleaved.store_fail();
    EXPECT_EQ(interleaved.conn_drop(), solo[static_cast<std::size_t>(i)])
        << "event " << i;
  }
}

TEST(FaultInjector, ZeroRateHooksNeverFireButKeepStreamsAligned) {
  // Two runs that differ only in store_delay_rate must agree on every
  // other stream's verdicts even when the zero-rate hook is called.
  FaultInjectorOptions quiet;
  quiet.store_fail_rate = 0.4;
  quiet.store_delay_rate = 0.0;
  quiet.seed = 9;
  FaultInjectorOptions noisy = quiet;
  noisy.store_delay_rate = 0.9;

  FaultInjector a(quiet);
  FaultInjector b(noisy);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(a.store_delay());
    (void)b.store_delay();
    EXPECT_EQ(a.store_fail(), b.store_fail()) << "event " << i;
  }
}

TEST(FaultInjector, FiredCountTracksRateAndActivations) {
  FaultInjectorOptions options;
  options.conn_stall_rate = 0.25;
  options.seed = 5;
  FaultInjector injector(options);
  std::uint64_t fired = 0;
  constexpr int kTrials = 8000;
  for (int i = 0; i < kTrials; ++i) {
    if (injector.conn_stall()) ++fired;
  }
  EXPECT_EQ(injector.activations(), fired);
  const double observed = static_cast<double>(fired) / kTrials;
  EXPECT_NEAR(observed, 0.25, 0.03);
}

TEST(FaultInjector, ConcurrentHooksFireTheSameTotalPerStream) {
  // With threads racing on one stream the *assignment* of verdicts to
  // callers is racy, but the multiset of verdicts over N events is
  // fixed: every index 0..N-1 is consumed exactly once.
  FaultInjectorOptions options;
  options.store_fail_rate = 0.2;
  options.seed = 123;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;

  FaultInjector injector(options);
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> fired_per_thread(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (injector.store_fail()) ++fired_per_thread[static_cast<std::size_t>(t)];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  std::uint64_t fired = 0;
  for (const std::uint64_t f : fired_per_thread) fired += f;

  std::uint64_t expected = 0;
  for (std::uint64_t i = 0; i < kThreads * kPerThread; ++i) {
    if (fault::decide(123, fault::Stream::kStoreFail, i, 0.2)) ++expected;
  }
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(injector.activations(), expected);
}

}  // namespace
}  // namespace wi::serve

#include "wi/serve/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "wi/common/status.hpp"

namespace wi::serve {
namespace {

TEST(ServerMetrics, CountersAccumulate) {
  ServerMetrics metrics;
  metrics.count(Counter::kRequests);
  metrics.count(Counter::kRequests);
  metrics.count(Counter::kHotHits, 5);
  const MetricsSnapshot snapshot = metrics.snapshot();
  EXPECT_EQ(snapshot.counter(Counter::kRequests), 2u);
  EXPECT_EQ(snapshot.counter(Counter::kHotHits), 5u);
  EXPECT_EQ(snapshot.counter(Counter::kColdHits), 0u);
}

TEST(ServerMetrics, ShardMergeMatchesTotals) {
  // Hammer the recorder from many threads (threads hash onto different
  // shards); the snapshot must fold everything exactly.
  ServerMetrics metrics;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        metrics.count(Counter::kRequests);
        metrics.observe_request(10.0, 20.0, 100.0, true);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const MetricsSnapshot snapshot = metrics.snapshot();
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(snapshot.counter(Counter::kRequests), kTotal);
  EXPECT_EQ(snapshot.queue_wait_us.count(), kTotal);
  EXPECT_EQ(snapshot.run_us.count(), kTotal);
  EXPECT_EQ(snapshot.total_us.count(), kTotal);
  EXPECT_DOUBLE_EQ(snapshot.queue_wait_us.mean(), 10.0);
  EXPECT_DOUBLE_EQ(snapshot.run_us.mean(), 20.0);
  EXPECT_DOUBLE_EQ(snapshot.total_us.mean(), 100.0);
  EXPECT_EQ(snapshot.latency.total(), kTotal);
}

TEST(ServerMetrics, LatencyPercentilesOnTheLogGrid) {
  ServerMetrics metrics;
  // 100 requests at ~1ms, one at ~1s: p50 near 1e3 us, p99 well above.
  for (int i = 0; i < 100; ++i) {
    metrics.observe_request(0.0, 0.0, 1000.0, false);
  }
  metrics.observe_request(0.0, 0.0, 1e6, false);
  const MetricsSnapshot snapshot = metrics.snapshot();
  const double p50 = snapshot.latency_percentile_us(0.50);
  const double p999 = snapshot.latency_percentile_us(0.999);
  EXPECT_GT(p50, 500.0);
  EXPECT_LT(p50, 2000.0);
  EXPECT_GT(p999, 1e5);
}

TEST(ServerMetrics, SubMicrosecondLatenciesClampToTheGrid) {
  Histogram histogram = ServerMetrics::make_latency_histogram();
  ServerMetrics::add_latency(histogram, 0.0);
  ServerMetrics::add_latency(histogram, 0.5);
  EXPECT_EQ(histogram.underflow(), 0u);
  EXPECT_EQ(histogram.total(), 2u);
  EXPECT_EQ(ServerMetrics::latency_quantile_us(
                ServerMetrics::make_latency_histogram(), 0.5),
            0.0);  // empty histogram reports 0
}

TEST(MetricsTable, SchemaAndDerivedRates) {
  ServerMetrics metrics;
  metrics.count(Counter::kRunScenario, 10);
  metrics.count(Counter::kHotHits, 4);
  metrics.count(Counter::kInflightJoins, 1);
  metrics.count(Counter::kColdHits, 2);
  metrics.count(Counter::kBackpressure, 2);
  MetricsGauges gauges;
  gauges.queue_depth = 3;
  gauges.hot_size = 7;
  gauges.workers = 2;
  gauges.has_store = true;
  gauges.store_hits = 11;
  const Table table = metrics_to_table(metrics.snapshot(), gauges);
  ASSERT_EQ(table.headers(),
            (std::vector<std::string>{"metric", "value"}));
  // Completed = 10 run requests - 2 backpressure rejects = 8.
  EXPECT_DOUBLE_EQ(metrics_table_value(table, "hit_rate_hot"), 0.5);
  EXPECT_DOUBLE_EQ(metrics_table_value(table, "hit_rate_inflight"),
                   0.125);
  EXPECT_DOUBLE_EQ(metrics_table_value(table, "hit_rate_cold"), 0.25);
  EXPECT_DOUBLE_EQ(metrics_table_value(table, "hit_rate"), 0.875);
  EXPECT_DOUBLE_EQ(metrics_table_value(table, "queue_depth"), 3.0);
  EXPECT_DOUBLE_EQ(metrics_table_value(table, "hot_tier_size"), 7.0);
  EXPECT_DOUBLE_EQ(metrics_table_value(table, "workers"), 2.0);
  EXPECT_DOUBLE_EQ(metrics_table_value(table, "store_enabled"), 1.0);
  EXPECT_DOUBLE_EQ(metrics_table_value(table, "store_hits"), 11.0);
  // Every counter has a row under its canonical name.
  for (std::size_t c = 0;
       c < static_cast<std::size_t>(Counter::kCount); ++c) {
    EXPECT_NO_THROW((void)metrics_table_value(
        table, counter_name(static_cast<Counter>(c))));
  }
}

TEST(MetricsTable, ZeroRequestsMeansZeroRates) {
  ServerMetrics metrics;
  const Table table =
      metrics_to_table(metrics.snapshot(), MetricsGauges{});
  EXPECT_DOUBLE_EQ(metrics_table_value(table, "hit_rate"), 0.0);
  EXPECT_DOUBLE_EQ(metrics_table_value(table, "latency_us_p50"), 0.0);
}

TEST(MetricsTable, MissingMetricThrowsNotFound) {
  ServerMetrics metrics;
  const Table table =
      metrics_to_table(metrics.snapshot(), MetricsGauges{});
  try {
    (void)metrics_table_value(table, "no_such_metric");
    FAIL() << "expected StatusError";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.status().code(), StatusCode::kNotFound);
  }
}

}  // namespace
}  // namespace wi::serve

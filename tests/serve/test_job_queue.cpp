#include "wi/serve/job_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

namespace wi::serve {
namespace {

struct Item {
  std::uint64_t client = 0;
  int sequence = 0;
};

TEST(FairJobQueue, FifoWithinOneClient) {
  FairJobQueue<Item> queue;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(push_accepted(queue.try_push(1, Item{1, i})));
  }
  for (int i = 0; i < 5; ++i) {
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(item->sequence, i);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(FairJobQueue, RoundRobinAcrossClients) {
  FairJobQueue<Item> queue;
  // Client 1 floods; clients 2 and 3 each queue one job.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(push_accepted(queue.try_push(1, Item{1, i})));
  }
  ASSERT_TRUE(push_accepted(queue.try_push(2, Item{2, 0})));
  ASSERT_TRUE(push_accepted(queue.try_push(3, Item{3, 0})));
  // A full rotation serves every client once before client 1 again.
  std::vector<std::uint64_t> order;
  for (int i = 0; i < 6; ++i) {
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    order.push_back(item->client);
  }
  // First three pops: one from each client (rotation), not three from
  // the flooder.
  std::map<std::uint64_t, int> first_three;
  for (int i = 0; i < 3; ++i) ++first_three[order[i]];
  EXPECT_EQ(first_three.size(), 3u) << "a client was starved";
  // All of client 1's jobs still arrive in FIFO order overall.
  std::vector<std::uint64_t> expected_clients = {1, 1, 1, 1, 2, 3};
  std::sort(order.begin(), order.end());
  std::sort(expected_clients.begin(), expected_clients.end());
  EXPECT_EQ(order, expected_clients);
}

TEST(FairJobQueue, CapacityRejectsWithoutBlocking) {
  FairJobQueue<Item>::Options options;
  options.capacity = 3;
  FairJobQueue<Item> queue(options);
  EXPECT_TRUE(push_accepted(queue.try_push(1, Item{})));
  EXPECT_TRUE(push_accepted(queue.try_push(2, Item{})));
  EXPECT_TRUE(push_accepted(queue.try_push(3, Item{})));
  EXPECT_EQ(queue.try_push(4, Item{}), PushOutcome::kFull);
  (void)queue.pop();
  EXPECT_TRUE(push_accepted(queue.try_push(4, Item{})));   // slot freed
  EXPECT_EQ(queue.peak_depth(), 3u);
}

TEST(FairJobQueue, PerClientQuotaStopsAQueueHog) {
  FairJobQueue<Item>::Options options;
  options.capacity = 8;
  options.per_client_quota = 2;
  FairJobQueue<Item> queue(options);
  EXPECT_TRUE(push_accepted(queue.try_push(1, Item{})));
  EXPECT_TRUE(push_accepted(queue.try_push(1, Item{})));
  EXPECT_EQ(queue.try_push(1, Item{}),
            PushOutcome::kOverQuota);  // at quota, queue not full
  EXPECT_TRUE(push_accepted(queue.try_push(2, Item{})));   // other clients unaffected
  EXPECT_EQ(queue.size(), 3u);
}

TEST(FairJobQueue, DrainedLanesAreReclaimed) {
  // A long-running daemon sees an unbounded stream of client ids; the
  // lane table must track *queued* clients, not clients ever seen.
  FairJobQueue<Item> queue;
  for (std::uint64_t c = 1; c <= 100; ++c) {
    ASSERT_TRUE(push_accepted(queue.try_push(c, Item{c, 0})));
  }
  EXPECT_EQ(queue.lane_count(), 100u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(queue.pop().has_value());
  }
  EXPECT_EQ(queue.lane_count(), 0u);
  // A returning client gets a fresh lane and full quota again.
  ASSERT_TRUE(push_accepted(queue.try_push(7, Item{7, 1})));
  EXPECT_EQ(queue.lane_count(), 1u);
  ASSERT_TRUE(queue.pop().has_value());
  EXPECT_EQ(queue.lane_count(), 0u);
}

TEST(FairJobQueue, RotationSurvivesLaneReclamation) {
  FairJobQueue<Item> queue;
  // Interleave pushes and pops so lanes are erased mid-rotation; every
  // job must still come out exactly once, FIFO within its client.
  std::map<std::uint64_t, int> next_expected;
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t c = 1; c <= 4; ++c) {
      ASSERT_TRUE(push_accepted(queue.try_push(c, Item{c, round})));
    }
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(item->sequence, next_expected[item->client]++);
  }
  while (queue.size() > 0) {
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(item->sequence, next_expected[item->client]++);
  }
  for (const auto& [client, count] : next_expected) {
    EXPECT_EQ(count, 3) << "client " << client;
  }
  EXPECT_EQ(queue.lane_count(), 0u);
}

TEST(FairJobQueue, ShedWatermarkRejectsBeforeCapacity) {
  FairJobQueue<Item>::Options options;
  options.capacity = 8;
  options.shed_watermark = 2;
  FairJobQueue<Item> queue(options);
  EXPECT_TRUE(push_accepted(queue.try_push(1, Item{})));
  EXPECT_TRUE(push_accepted(queue.try_push(2, Item{})));
  // Depth hit the watermark: new work is shed although 6 slots remain.
  EXPECT_EQ(queue.try_push(3, Item{}), PushOutcome::kShed);
  EXPECT_EQ(queue.try_push(1, Item{}), PushOutcome::kShed);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.shed_count(), 2u);
  // Draining below the watermark reopens admission.
  (void)queue.pop();
  EXPECT_TRUE(push_accepted(queue.try_push(3, Item{})));
  EXPECT_EQ(queue.shed_count(), 2u);
}

TEST(FairJobQueue, ShedWatermarkClampsToCapacity) {
  FairJobQueue<Item>::Options options;
  options.capacity = 2;
  options.shed_watermark = 100;
  FairJobQueue<Item> queue(options);
  EXPECT_EQ(queue.options().shed_watermark, 2u);
  EXPECT_TRUE(push_accepted(queue.try_push(1, Item{})));
  EXPECT_TRUE(push_accepted(queue.try_push(2, Item{})));
  // At capacity the verdict is kFull (capacity wins the tie): the
  // watermark never makes a legal push *more* admissible.
  EXPECT_EQ(queue.try_push(3, Item{}), PushOutcome::kFull);
}

TEST(FairJobQueue, CloseStopsAdmissionButDrains) {
  FairJobQueue<Item> queue;
  ASSERT_TRUE(push_accepted(queue.try_push(1, Item{1, 0})));
  ASSERT_TRUE(push_accepted(queue.try_push(1, Item{1, 1})));
  queue.close();
  EXPECT_EQ(queue.try_push(1, Item{1, 2}), PushOutcome::kClosed);
  EXPECT_TRUE(queue.pop().has_value());
  EXPECT_TRUE(queue.pop().has_value());
  EXPECT_FALSE(queue.pop().has_value());  // closed + drained
}

TEST(FairJobQueue, CloseWakesBlockedConsumers) {
  FairJobQueue<Item> queue;
  std::atomic<int> finished{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 4; ++i) {
    consumers.emplace_back([&] {
      while (queue.pop().has_value()) {
      }
      finished.fetch_add(1);
    });
  }
  queue.close();
  for (std::thread& consumer : consumers) consumer.join();
  EXPECT_EQ(finished.load(), 4);
}

TEST(FairJobQueue, ConcurrentStressDeliversEverythingOnce) {
  FairJobQueue<Item>::Options options;
  options.capacity = 64;
  FairJobQueue<Item> queue(options);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::atomic<int> delivered{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (!push_accepted(
                queue.try_push(static_cast<std::uint64_t>(p),
                               Item{static_cast<std::uint64_t>(p), i}))) {
          rejected.fetch_add(1);
          std::this_thread::yield();
          --i;  // retry until admitted: the test wants full delivery
        }
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (queue.pop().has_value()) delivered.fetch_add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  queue.close();
  for (std::thread& thread : consumers) thread.join();
  EXPECT_EQ(delivered.load(), kProducers * kPerProducer);
  EXPECT_LE(queue.peak_depth(), 64u);
}

}  // namespace
}  // namespace wi::serve

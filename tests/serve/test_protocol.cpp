#include "wi/serve/protocol.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "wi/sim/registry.hpp"

namespace wi::serve {
namespace {

using sim::CampaignSpec;
using sim::ScenarioSpec;

[[nodiscard]] Status parse_failure(const std::string& line) {
  try {
    (void)request_from_line(line);
  } catch (const StatusError& error) {
    return error.status();
  }
  return Status::ok();
}

TEST(Protocol, RequestRoundTripEveryType) {
  std::vector<Request> requests;
  {
    Request request;
    request.type = RequestType::kRunScenario;
    request.id = "r1";
    request.scenario = "table1_link_budget";
    requests.push_back(request);
  }
  {
    Request request;
    request.type = RequestType::kRunScenario;
    request.id = "r2";
    request.spec = sim::ScenarioRegistry::paper().get("fig04_tx_power");
    request.seed = 7;
    requests.push_back(request);
  }
  {
    Request request;
    request.type = RequestType::kRunCampaign;
    request.id = "r3";
    request.scenario = "table1_link_budget";
    request.seeds = 4;
    request.base_seed = 99;
    requests.push_back(request);
  }
  {
    Request request;
    request.type = RequestType::kRunCampaign;
    request.id = "r4";
    CampaignSpec campaign;
    campaign.name = "inline_campaign";
    campaign.seeds = 3;
    campaign.base_seed = 5;
    campaign.scenario =
        sim::ScenarioRegistry::paper().get("table1_link_budget");
    request.campaign = campaign;
    requests.push_back(request);
  }
  for (const RequestType type :
       {RequestType::kStats, RequestType::kHealth,
        RequestType::kShutdown}) {
    Request request;
    request.type = type;
    request.id = "aux";
    requests.push_back(request);
  }

  for (const Request& original : requests) {
    const std::string line = request_to_line(original);
    const Request parsed = request_from_line(line);
    EXPECT_EQ(parsed.type, original.type);
    EXPECT_EQ(parsed.id, original.id);
    EXPECT_EQ(parsed.scenario, original.scenario);
    EXPECT_EQ(parsed.spec.has_value(), original.spec.has_value());
    EXPECT_EQ(parsed.campaign.has_value(),
              original.campaign.has_value());
    EXPECT_EQ(parsed.seed, original.seed);
    // The canonical line must be a fixed point of the codec.
    EXPECT_EQ(request_to_line(parsed), line);
  }
}

TEST(Protocol, ResponseRoundTripWithResult) {
  Response response;
  response.id = "resp-1";
  response.type = RequestType::kRunScenario;
  response.status = Status::ok();
  response.tier = "run";
  response.queue_us = 120.5;
  response.run_us = 4096.25;
  sim::RunResult result;
  result.scenario = "table1_link_budget";
  result.table = Table({"metric", "value"});
  result.table.add_row({"snr_db", "15.2"});
  result.notes.push_back("note one");
  response.result = result;

  const std::string line = response_to_line(response);
  const Response parsed = response_from_line(line);
  EXPECT_EQ(parsed.id, response.id);
  EXPECT_EQ(parsed.type, response.type);
  EXPECT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.tier, "run");
  EXPECT_DOUBLE_EQ(parsed.queue_us, 120.5);
  EXPECT_DOUBLE_EQ(parsed.run_us, 4096.25);
  ASSERT_TRUE(parsed.result.has_value());
  EXPECT_EQ(parsed.result->table, result.table);
  EXPECT_EQ(parsed.result->notes, result.notes);
  EXPECT_EQ(response_to_line(parsed), line);
}

TEST(Protocol, ResponseRoundTripFailureStatus) {
  Response response;
  response.id = "resp-2";
  response.type = RequestType::kRunScenario;
  response.status =
      Status(StatusCode::kUnavailable, "queue is full — retry");
  const Response parsed =
      response_from_line(response_to_line(response));
  EXPECT_EQ(parsed.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(parsed.status.message(), "queue is full — retry");
  EXPECT_FALSE(parsed.result.has_value());
}

TEST(Protocol, MalformedFramesAreParseErrors) {
  const char* kBad[] = {
      "",                                     // not JSON
      "not json at all",
      "[1,2,3]",                              // not an object
      "{}",                                   // no type
      "{\"type\":\"no_such_type\"}",
      "{\"type\":\"run_scenario\"}",          // neither name nor spec
      "{\"type\":\"run_scenario\",\"scenario\":\"a\",\"spec\":{}}",
      "{\"type\":\"run_scenario\",\"scenario\":\"a\",\"bogus\":1}",
      "{\"type\":\"health\",\"scenario\":\"a\"}",
      "{\"type\":\"health\",\"seed\":1}",
      "{\"type\":\"run_campaign\"}",
      "{\"type\":\"run_campaign\",\"scenario\":\"a\",\"seeds\":0}",
      "{\"type\":\"run_scenario\",\"scenario\":\"a\",\"seeds\":2}",
      "{\"type\":\"run_scenario\",\"scenario\":\"a\",\"seed\":-3}",
      "{\"type\":\"run_scenario\",\"scenario\":\"a\",\"seed\":1.5}",
  };
  for (const char* line : kBad) {
    const Status status = parse_failure(line);
    EXPECT_EQ(status.code(), StatusCode::kParseError)
        << "frame: " << line << " -> " << status.to_string();
  }
}

TEST(Protocol, InlineCampaignConflictsWithSeedKeys) {
  Request request;
  request.type = RequestType::kRunCampaign;
  CampaignSpec campaign;
  campaign.scenario =
      sim::ScenarioRegistry::paper().get("table1_link_budget");
  request.campaign = campaign;
  std::string line = request_to_line(request);
  // Patch the seeds key in next to the inline campaign.
  line.insert(line.size() - 1, ",\"seeds\":4");
  EXPECT_EQ(parse_failure(line).code(), StatusCode::kParseError);
}

TEST(Protocol, UnknownSpecKeysAreRejected) {
  // The inline spec path must inherit the scenario codec's strictness:
  // an unknown key inside 'spec' fails the whole request.
  const std::string line =
      "{\"type\":\"run_scenario\",\"spec\":{\"name\":\"x\","
      "\"definitely_not_a_field\":1}}";
  EXPECT_EQ(parse_failure(line).code(), StatusCode::kParseError);
}

TEST(Protocol, MalformedResponsesThrow) {
  const char* kBad[] = {
      "nope",
      "{}",                              // no status
      "{\"status\":{\"code\":\"whatever\",\"message\":\"\"}}",
      "{\"status\":{\"code\":\"ok\",\"message\":\"\"},\"extra\":1}",
  };
  for (const char* line : kBad) {
    EXPECT_THROW((void)response_from_line(line), StatusError)
        << "frame: " << line;
  }
}

TEST(Protocol, StatusCodesSurviveTheWire) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidSpec,
        StatusCode::kUnreachableRoute, StatusCode::kUnsupported,
        StatusCode::kExecutionError, StatusCode::kParseError,
        StatusCode::kNotFound, StatusCode::kUnavailable,
        StatusCode::kDeadlineExceeded}) {
    Response response;
    response.status = Status(code, "detail");
    const Response parsed =
        response_from_line(response_to_line(response));
    EXPECT_EQ(parsed.status.code(), code);
  }
}

}  // namespace
}  // namespace wi::serve

/// Resilience end-to-end tests: real Server, real TCP clients, faults
/// on. Covers the ISSUE-7 contract: queued jobs whose deadline lapses
/// are answered kDeadlineExceeded without running, the load-shed
/// watermark rejects with a retry_after_ms hint before the queue is
/// full, client receive timeouts surface as retryable errors,
/// call_with_retry rides out shedding, begin_shutdown() drains like a
/// shutdown frame, and a chaos-armed server (dropped/stalled
/// connections, failing/corrupting store) still terminally resolves a
/// fuzzed mix of malformed and valid frames.

#include "wi/serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "wi/serve/client.hpp"
#include "wi/sim/registry.hpp"
#include "wi/sim/workload.hpp"

namespace wi::serve {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

std::atomic<int> g_nap_started{0};
std::atomic<int> g_nap_completed{0};
std::atomic<int> g_nap_ms{150};

/// Sleeping workload (distinct from test_server_e2e's so the two test
/// binaries' registries never collide on a name).
class NapRunner : public sim::WorkloadRunner {
 public:
  [[nodiscard]] std::string name() const override { return "test_nap"; }
  [[nodiscard]] std::string description() const override {
    return "resilience test workload: sleeps g_nap_ms then returns";
  }
  [[nodiscard]] std::vector<std::string> headers() const override {
    return {"metric", "value"};
  }
  [[nodiscard]] Table run(const sim::ScenarioSpec& spec,
                          sim::WorkloadEnv&) const override {
    g_nap_started.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(g_nap_ms.load()));
    Table table(headers());
    table.add_row({"napped_for", spec.name});
    g_nap_completed.fetch_add(1);
    return table;
  }
};

void ensure_nap_registered() {
  static std::once_flag once;
  std::call_once(once, [] {
    sim::WorkloadRegistry::global().register_runner(
        std::make_unique<NapRunner>());
  });
}

[[nodiscard]] Request nap_request(const std::string& name,
                                  const std::string& id) {
  ensure_nap_registered();
  Request request;
  request.type = RequestType::kRunScenario;
  request.id = id;
  sim::ScenarioSpec spec;
  spec.name = name;
  spec.workload = "test_nap";
  request.spec = spec;
  return request;
}

[[nodiscard]] Request aux_request(RequestType type,
                                  const std::string& id = "aux") {
  Request request;
  request.type = type;
  request.id = id;
  return request;
}

class ServerFixture {
 public:
  explicit ServerFixture(ServerOptions options)
      : server_(std::move(options)) {
    const Status status = server_.start();
    if (!status.is_ok()) {
      ADD_FAILURE() << "server failed to start: " << status.to_string();
    }
  }
  ~ServerFixture() { server_.stop(); }

  [[nodiscard]] Server& server() { return server_; }
  [[nodiscard]] std::uint16_t port() const { return server_.port(); }
  [[nodiscard]] Response call(const Request& request) {
    return call_once("127.0.0.1", server_.port(), request);
  }

 private:
  Server server_;
};

/// Spin until the nap workload has started at least `target` runs.
void wait_for_started(int target) {
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (g_nap_started.load() < target &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_GE(g_nap_started.load(), target) << "worker never picked up job";
}

TEST(ResilienceE2e, ExpiredQueuedJobsAreAnsweredWithoutRunning) {
  ensure_nap_registered();
  ServerOptions options;
  options.workers = 1;
  ServerFixture fixture(std::move(options));
  g_nap_ms.store(400);
  const int started_before = g_nap_started.load();

  // Job A occupies the single worker for 400 ms.
  Response blocker_response;
  std::thread blocker([&] {
    try {
      blocker_response = fixture.call(nap_request("nap_blocker", "b1"));
    } catch (const StatusError& error) {
      ADD_FAILURE() << error.status().to_string();
    }
  });
  wait_for_started(started_before + 1);

  // Job B queues behind it with a 50 ms deadline: by the time the
  // worker pops it, it is already dead — answered, never run.
  Request doomed = nap_request("nap_doomed", "d1");
  doomed.deadline_ms = 50.0;
  const Response expired = fixture.call(doomed);
  EXPECT_EQ(expired.status.code(), StatusCode::kDeadlineExceeded)
      << expired.status.to_string();
  EXPECT_EQ(expired.tier, "expired");
  EXPECT_FALSE(expired.result.has_value());

  blocker.join();
  EXPECT_TRUE(blocker_response.ok()) << blocker_response.status.to_string();
  // The doomed job's workload never executed.
  EXPECT_EQ(g_nap_started.load(), started_before + 1);
  EXPECT_EQ(fixture.server().metrics().snapshot().counter(
                Counter::kDeadlineExpired),
            1u);
  g_nap_ms.store(150);

  // A generous deadline on an idle server runs normally.
  Request relaxed = nap_request("nap_relaxed", "d2");
  relaxed.deadline_ms = 30000.0;
  const Response fine = fixture.call(relaxed);
  EXPECT_TRUE(fine.ok()) << fine.status.to_string();
}

TEST(ResilienceE2e, ShedWatermarkRejectsWithRetryAfterHint) {
  ensure_nap_registered();
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 16;
  options.per_client_quota = 16;
  options.shed_watermark = 1;
  options.shed_retry_after_ms = 25.0;
  ServerFixture fixture(std::move(options));
  g_nap_ms.store(400);
  const int started_before = g_nap_started.load();

  // One job running, one queued: depth == watermark, admission closed.
  // Submissions are staggered — the second occupier goes in only after
  // the worker has popped the first, else the pair races each other to
  // the watermark and the second one is shed instead of queued.
  std::vector<std::thread> clients;
  std::vector<Response> responses(2);
  for (int i = 0; i < 2; ++i) {
    clients.emplace_back([&, i] {
      try {
        responses[static_cast<std::size_t>(i)] = fixture.call(
            nap_request("nap_shed_" + std::to_string(i),
                        "s" + std::to_string(i)));
      } catch (const StatusError& error) {
        ADD_FAILURE() << error.status().to_string();
      }
    });
    wait_for_started(started_before + 1);
  }
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (metrics_table_value(fixture.server().stats_table(),
                             "queue_depth") < 1.0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }

  const Response shed = fixture.call(nap_request("nap_shed_extra", "sx"));
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable)
      << shed.status.to_string();
  EXPECT_DOUBLE_EQ(shed.retry_after_ms, 25.0)
      << "shed rejections carry the retry hint";

  for (std::thread& client : clients) client.join();
  for (const Response& response : responses) {
    EXPECT_TRUE(response.ok()) << response.status.to_string();
  }
  g_nap_ms.store(150);

  const MetricsSnapshot snapshot = fixture.server().metrics().snapshot();
  EXPECT_GE(snapshot.counter(Counter::kLoadShed), 1u);
  // Shed rejections also count as backpressure (they are kUnavailable),
  // and the queue never saturated its real capacity.
  EXPECT_GE(snapshot.counter(Counter::kBackpressure),
            snapshot.counter(Counter::kLoadShed));
}

TEST(ResilienceE2e, ClientReceiveTimeoutIsRetryable) {
  ensure_nap_registered();
  ServerOptions options;
  options.workers = 1;
  ServerFixture fixture(std::move(options));
  g_nap_ms.store(500);

  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", fixture.port()).is_ok());
  ASSERT_TRUE(client.set_timeout(50.0).is_ok());
  bool timed_out = false;
  try {
    (void)client.call(nap_request("nap_slowpoke", "t1"));
  } catch (const StatusError& error) {
    timed_out = true;
    EXPECT_EQ(error.status().code(), StatusCode::kDeadlineExceeded)
        << error.status().to_string();
  }
  EXPECT_TRUE(timed_out) << "a 50 ms timeout cannot survive a 500 ms job";
  client.close();
  g_nap_ms.store(150);
  // The server finishes the abandoned job and stays healthy.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (g_nap_completed.load() < g_nap_started.load() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  const Response health = fixture.call(aux_request(RequestType::kHealth));
  EXPECT_TRUE(health.ok());
}

TEST(ResilienceE2e, CallWithRetryRidesOutShedding) {
  ensure_nap_registered();
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 16;
  options.per_client_quota = 16;
  options.shed_watermark = 1;
  options.shed_retry_after_ms = 20.0;
  ServerFixture fixture(std::move(options));
  g_nap_ms.store(250);
  const int started_before = g_nap_started.load();

  // Staggered like the shed test above: occupy the worker first, then
  // queue one job to sit exactly at the watermark.
  std::vector<std::thread> occupiers;
  for (int i = 0; i < 2; ++i) {
    occupiers.emplace_back([&, i] {
      try {
        (void)fixture.call(nap_request("nap_occupy_" + std::to_string(i),
                                       "o" + std::to_string(i)));
      } catch (const StatusError& error) {
        ADD_FAILURE() << error.status().to_string();
      }
    });
    wait_for_started(started_before + 1);
  }
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (metrics_table_value(fixture.server().stats_table(),
                             "queue_depth") < 1.0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }

  // The naive single call is shed right now — but the retrying client
  // keeps at it (floored at the 20 ms hint) until the backlog drains.
  RetryOptions retry;
  retry.max_attempts = 20;
  retry.initial_backoff_ms = 10.0;
  retry.max_backoff_ms = 100.0;
  retry.seed = 7;
  RetryStats stats;
  const Response response =
      call_with_retry("127.0.0.1", fixture.port(),
                      nap_request("nap_patient", "p1"), retry, &stats);
  EXPECT_TRUE(response.ok()) << response.status.to_string();
  EXPECT_GE(stats.attempts, 2u) << "the first attempt must have been shed";
  EXPECT_GT(stats.backoff_ms_total, 0.0);

  for (std::thread& occupier : occupiers) occupier.join();
  g_nap_ms.store(150);
  EXPECT_GE(fixture.server().metrics().snapshot().counter(
                Counter::kLoadShed),
            1u);
}

TEST(ResilienceE2e, BeginShutdownDrainsLikeAShutdownFrame) {
  ensure_nap_registered();
  ServerOptions options;
  options.workers = 1;
  ServerFixture fixture(std::move(options));
  g_nap_ms.store(300);
  const int started_before = g_nap_started.load();

  Response slow_response;
  std::thread slow_client([&] {
    try {
      slow_response = fixture.call(nap_request("nap_drained", "sd1"));
    } catch (const StatusError& error) {
      ADD_FAILURE() << error.status().to_string();
    }
  });
  wait_for_started(started_before + 1);

  // What the SIGTERM watcher thread does: drain, then release wait().
  fixture.server().begin_shutdown();
  fixture.server().begin_shutdown();  // idempotent
  fixture.server().wait();            // returns promptly once signalled
  EXPECT_TRUE(fixture.server().draining());
  EXPECT_EQ(g_nap_completed.load(), g_nap_started.load())
      << "begin_shutdown must drain accepted work first";

  slow_client.join();
  EXPECT_TRUE(slow_response.ok()) << slow_response.status.to_string();
  g_nap_ms.store(150);
}

/// Chaos fuzz: a server with every fault stream armed, fed a
/// deterministic mix of malformed frames (truncated, split mid-frame,
/// garbage, abandoned) and valid retried requests. The gate is the
/// ISSUE-7 liveness contract — every interaction resolves terminally
/// and the server still answers health afterwards.
TEST(ResilienceE2e, ChaosFuzzEveryInteractionResolvesTerminally) {
  const fs::path dir = fs::temp_directory_path() / "wi_serve_chaos_fuzz";
  fs::remove_all(dir);

  ServerOptions options;
  options.workers = 2;
  options.store_dir = dir;
  options.version = "chaos-v1";
  options.chaos.store_fail_rate = 0.25;
  options.chaos.store_delay_rate = 0.25;
  options.chaos.store_corrupt_rate = 0.25;
  options.chaos.conn_drop_rate = 0.2;
  options.chaos.conn_stall_rate = 0.2;
  options.chaos.delay_ms = 2.0;
  options.chaos.seed = 2026;
  ServerFixture fixture(std::move(options));

  const char* kMalformed[] = {
      "{\"type\":\"run_scenario\"",       // truncated JSON
      "garbage bytes not a frame",
      "{\"type\":\"nope\",\"id\":\"x\"}",
      "{}",
  };

  int resolved = 0;
  int succeeded = 0;
  constexpr int kRounds = 24;
  for (int i = 0; i < kRounds; ++i) {
    // (a) a malformed frame on a throwaway connection — the answer is
    // a parse error, a dropped connection, or nothing (we abandon it);
    // all are terminal for the client.
    {
      Client fuzzer;
      if (fuzzer.connect("127.0.0.1", fixture.port()).is_ok()) {
        (void)fuzzer.set_timeout(2000.0);
        try {
          const Response response = fuzzer.call_raw(
              kMalformed[static_cast<std::size_t>(i) % 4]);
          EXPECT_FALSE(response.ok());
        } catch (const StatusError&) {
          // dropped / stalled-past-timeout connection: also terminal
        }
        if (i % 3 == 0) {
          // Abandon a half-written frame: the server must not leak the
          // connection or stall a worker on it.
          (void)fuzzer.send_raw("{\"type\":\"run_sc");
        }
        fuzzer.close();
      }
    }
    // (b) a valid request through the retry layer: chaos may drop the
    // connection or fail the store underneath it, but it must land.
    Request request;
    request.type = RequestType::kRunScenario;
    request.id = "chaos-" + std::to_string(i);
    request.scenario =
        (i % 2 == 0) ? "fig01_pathloss" : "table1_link_budget";
    request.seed = static_cast<std::uint64_t>(1 + i / 4);
    RetryOptions retry;
    retry.max_attempts = 8;
    retry.initial_backoff_ms = 5.0;
    retry.timeout_ms = 5000.0;
    retry.seed = static_cast<std::uint64_t>(i);
    try {
      const Response response = call_with_retry(
          "127.0.0.1", fixture.port(), request, retry);
      ++resolved;
      if (response.ok()) ++succeeded;
    } catch (const StatusError& error) {
      ++resolved;  // an explicit error is a terminal resolution too
      EXPECT_NE(error.status().code(), StatusCode::kOk)
          << error.status().to_string();
    }
  }

  EXPECT_EQ(resolved, kRounds) << "every valid request must resolve";
  EXPECT_GT(succeeded, 0) << "chaos at these rates cannot starve all "
                             "8-attempt retry chains";

  const MetricsSnapshot snapshot = fixture.server().metrics().snapshot();
  EXPECT_GT(snapshot.counter(Counter::kInjectedFaults), 0u)
      << "the injector must actually have fired";

  // The server survives its own chaos: health still answers (retry past
  // injected connection drops).
  RetryOptions health_retry;
  health_retry.max_attempts = 10;
  health_retry.timeout_ms = 2000.0;
  const Response health =
      call_with_retry("127.0.0.1", fixture.port(),
                      aux_request(RequestType::kHealth), health_retry);
  EXPECT_TRUE(health.ok()) << health.status.to_string();

  fixture.server().stop();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace wi::serve

/// End-to-end socket tests: a real Server on an ephemeral port, real
/// Clients over TCP. Covers the full ISSUE-6 service contract: health /
/// stats round trips, single-flight dedup under concurrent duplicate
/// requests (exactly one engine run, bit-identical tables),
/// backpressure when the queue saturates, malformed + oversized frames
/// leaving the connection usable, the cold tier surviving a server
/// restart, and graceful shutdown draining accepted work.

#include "wi/serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "wi/serve/client.hpp"
#include "wi/sim/registry.hpp"
#include "wi/sim/workload.hpp"

namespace wi::serve {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

std::atomic<int> g_sleepy_started{0};
std::atomic<int> g_sleepy_completed{0};
std::atomic<int> g_sleepy_ms{150};

/// Payload-free test workload that sleeps, so tests can hold the worker
/// pool busy for a deterministic window and observe queue backpressure
/// and drain-before-shutdown behaviour.
class SleepyRunner : public sim::WorkloadRunner {
 public:
  [[nodiscard]] std::string name() const override { return "test_sleepy"; }
  [[nodiscard]] std::string description() const override {
    return "e2e test workload: sleeps g_sleepy_ms then returns one row";
  }
  [[nodiscard]] std::vector<std::string> headers() const override {
    return {"metric", "value"};
  }
  [[nodiscard]] Table run(const sim::ScenarioSpec& spec,
                          sim::WorkloadEnv&) const override {
    g_sleepy_started.fetch_add(1);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(g_sleepy_ms.load()));
    Table table(headers());
    table.add_row({"slept_for", spec.name});
    g_sleepy_completed.fetch_add(1);
    return table;
  }
};

void ensure_sleepy_registered() {
  static std::once_flag once;
  std::call_once(once, [] {
    sim::WorkloadRegistry::global().register_runner(
        std::make_unique<SleepyRunner>());
  });
}

[[nodiscard]] sim::ScenarioSpec sleepy_spec(const std::string& name) {
  ensure_sleepy_registered();
  sim::ScenarioSpec spec;
  spec.name = name;
  spec.workload = "test_sleepy";
  return spec;
}

[[nodiscard]] Request run_by_name(const std::string& scenario,
                                  const std::string& id) {
  Request request;
  request.type = RequestType::kRunScenario;
  request.id = id;
  request.scenario = scenario;
  return request;
}

[[nodiscard]] Request aux_request(RequestType type,
                                  const std::string& id = "aux") {
  Request request;
  request.type = type;
  request.id = id;
  return request;
}

/// Starts a server on an ephemeral loopback port and guarantees
/// teardown even when an assertion fires mid-test.
class ServerFixture {
 public:
  explicit ServerFixture(ServerOptions options)
      : server_(std::move(options)) {
    const Status status = server_.start();
    if (!status.is_ok()) {
      ADD_FAILURE() << "server failed to start: " << status.to_string();
    }
  }
  ~ServerFixture() { server_.stop(); }

  [[nodiscard]] Server& server() { return server_; }
  [[nodiscard]] std::uint16_t port() const { return server_.port(); }
  [[nodiscard]] Response call(const Request& request) {
    return call_once("127.0.0.1", server_.port(), request);
  }

 private:
  Server server_;
};

[[nodiscard]] ServerOptions fast_options() {
  ServerOptions options;
  options.workers = 2;
  options.hot_capacity = 64;
  return options;  // ephemeral port, no store
}

TEST(ServerE2e, HealthAndStatsRoundTrip) {
  ServerFixture fixture(fast_options());
  const Response health = fixture.call(aux_request(RequestType::kHealth,
                                                   "h1"));
  EXPECT_TRUE(health.ok()) << health.status.to_string();
  EXPECT_EQ(health.id, "h1");
  EXPECT_EQ(health.type, RequestType::kHealth);

  const Response stats = fixture.call(aux_request(RequestType::kStats));
  ASSERT_TRUE(stats.ok()) << stats.status.to_string();
  ASSERT_TRUE(stats.result.has_value());
  const Table& table = stats.result->table;
  ASSERT_EQ(table.headers(),
            (std::vector<std::string>{"metric", "value"}));
  // The health frame above is already folded into the snapshot.
  EXPECT_GE(metrics_table_value(table, "requests_total"), 1.0);
  EXPECT_DOUBLE_EQ(metrics_table_value(table, "workers"), 2.0);
  EXPECT_DOUBLE_EQ(metrics_table_value(table, "store_enabled"), 0.0);
  // The library-level table is the same one the wire returns.
  EXPECT_NO_THROW(
      (void)metrics_table_value(fixture.server().stats_table(),
                                "hit_rate"));
}

TEST(ServerE2e, ConcurrentDuplicatesRunTheEngineExactlyOnce) {
  ServerFixture fixture(fast_options());
  constexpr int kClients = 8;
  std::vector<Response> responses(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      try {
        responses[i] = fixture.call(
            run_by_name("fig01_pathloss", "dup-" + std::to_string(i)));
      } catch (const StatusError& error) {
        ADD_FAILURE() << "client " << i << ": "
                      << error.status().to_string();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  int run_tier = 0;
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(responses[i].ok()) << responses[i].status.to_string();
    EXPECT_EQ(responses[i].id, "dup-" + std::to_string(i));
    ASSERT_TRUE(responses[i].result.has_value());
    if (responses[i].tier == "run") ++run_tier;
    // Bit-identical tables: every client sees the one result.
    EXPECT_EQ(responses[i].result->table, responses[0].result->table);
    EXPECT_EQ(responses[i].result->notes, responses[0].result->notes);
  }
  EXPECT_EQ(run_tier, 1) << "exactly one response pays the engine run";

  const MetricsSnapshot snapshot = fixture.server().metrics().snapshot();
  EXPECT_EQ(snapshot.counter(Counter::kEngineRuns), 1u);
  EXPECT_EQ(snapshot.counter(Counter::kRunScenario),
            static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(snapshot.counter(Counter::kHotHits) +
                snapshot.counter(Counter::kInflightJoins),
            static_cast<std::uint64_t>(kClients - 1));
  EXPECT_EQ(fixture.server().hot_tier().leads(), 1u);
}

TEST(ServerE2e, SeedSaltProducesDistinctKeys) {
  ServerFixture fixture(fast_options());
  Request seeded = run_by_name("fig01_pathloss", "s1");
  seeded.seed = 17;
  const Response first = fixture.call(seeded);
  ASSERT_TRUE(first.ok()) << first.status.to_string();
  EXPECT_EQ(first.tier, "run");

  Request other_seed = seeded;
  other_seed.id = "s2";
  other_seed.seed = 18;
  const Response second = fixture.call(other_seed);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.tier, "run") << "different seed must not coalesce";

  Request repeat = seeded;
  repeat.id = "s3";
  const Response third = fixture.call(repeat);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.tier, "hot");
  EXPECT_EQ(fixture.server().metrics().snapshot().counter(
                Counter::kEngineRuns),
            2u);
}

TEST(ServerE2e, QueueSaturationAnswersWithBackpressure) {
  ensure_sleepy_registered();
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.per_client_quota = 1;
  ServerFixture fixture(std::move(options));
  g_sleepy_ms.store(400);

  // Distinct specs so nothing coalesces: 1 runs, 1 queues, the rest
  // must get an explicit kUnavailable — never a hang, never a drop.
  constexpr int kClients = 5;
  std::atomic<int> ok_count{0};
  std::atomic<int> backpressure{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Request request;
      request.type = RequestType::kRunScenario;
      request.id = "bp-" + std::to_string(i);
      request.spec = sleepy_spec("sleepy_bp_" + std::to_string(i));
      try {
        const Response response = fixture.call(request);
        if (response.ok()) {
          ok_count.fetch_add(1);
        } else if (response.status.code() == StatusCode::kUnavailable) {
          backpressure.fetch_add(1);
        } else {
          ADD_FAILURE() << "unexpected status: "
                        << response.status.to_string();
        }
      } catch (const StatusError& error) {
        ADD_FAILURE() << error.status().to_string();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  g_sleepy_ms.store(150);

  EXPECT_EQ(ok_count.load() + backpressure.load(), kClients);
  EXPECT_GE(ok_count.load(), 1);
  EXPECT_GE(backpressure.load(), 1) << "the 400ms run window admits at "
                                       "most ~2 of 5 concurrent jobs";
  EXPECT_GE(fixture.server().metrics().snapshot().counter(
                Counter::kBackpressure),
            static_cast<std::uint64_t>(backpressure.load()));

  // The server is still healthy after rejecting work.
  const Response health = fixture.call(aux_request(RequestType::kHealth));
  EXPECT_TRUE(health.ok());
}

TEST(ServerE2e, ReconnectingCannotEvadeThePerClientQuota) {
  // Admission fairness is keyed by peer address, not connection
  // serial: a client that opens a fresh connection per request still
  // lands in the same lane, so the quota holds across reconnects.
  ensure_sleepy_registered();
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 8;  // room in the queue — quota must bind
  options.per_client_quota = 1;
  ServerFixture fixture(std::move(options));
  g_sleepy_ms.store(600);
  const int started_before = g_sleepy_started.load();

  const auto sleepy_request = [](const std::string& name,
                                 const std::string& id) {
    Request request;
    request.type = RequestType::kRunScenario;
    request.id = id;
    request.spec = sleepy_spec(name);
    return request;
  };

  Client first;
  Client second;
  ASSERT_TRUE(first.connect("127.0.0.1", fixture.port()).is_ok());
  ASSERT_TRUE(second.connect("127.0.0.1", fixture.port()).is_ok());
  // Job A (connection 1) occupies the single worker...
  ASSERT_TRUE(
      first.send_raw(request_to_line(sleepy_request("quota_a", "qa")))
          .is_ok());
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (g_sleepy_started.load() == started_before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_GT(g_sleepy_started.load(), started_before);
  // ...job B (connection 2, same peer) fills the peer's one-deep
  // lane...
  ASSERT_TRUE(
      second.send_raw(request_to_line(sleepy_request("quota_b", "qb")))
          .is_ok());
  while (metrics_table_value(fixture.server().stats_table(),
                             "queue_depth") < 1.0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_DOUBLE_EQ(metrics_table_value(fixture.server().stats_table(),
                                       "queue_depth"),
                   1.0);

  // ...so job C on a third, brand-new connection from the same peer
  // must be rejected at quota even though the queue has 7 free slots.
  const Response evading =
      fixture.call(sleepy_request("quota_c", "qc"));
  EXPECT_EQ(evading.status.code(), StatusCode::kUnavailable)
      << evading.status.to_string();

  // The in-quota work is unaffected.
  const Response response_a = first.receive();
  const Response response_b = second.receive();
  EXPECT_TRUE(response_a.ok()) << response_a.status.to_string();
  EXPECT_TRUE(response_b.ok()) << response_b.status.to_string();
  first.close();
  second.close();
  g_sleepy_ms.store(150);
}

TEST(ServerE2e, MalformedAndOversizedFramesKeepTheConnectionUsable) {
  ServerOptions options = fast_options();
  options.max_frame_bytes = 4096;
  ServerFixture fixture(std::move(options));

  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", fixture.port()).is_ok());

  const Response bad_json = client.call_raw("this is not json");
  EXPECT_EQ(bad_json.status.code(), StatusCode::kParseError);

  const Response bad_shape =
      client.call_raw("{\"type\":\"run_scenario\"}");
  EXPECT_EQ(bad_shape.status.code(), StatusCode::kParseError);

  // One frame over the server's 4 KiB bound: discarded, answered, and
  // the stream stays framed.
  const std::string oversized(8192, 'x');
  const Response too_big = client.call_raw(oversized);
  EXPECT_EQ(too_big.status.code(), StatusCode::kParseError);

  // Same connection, valid frame: still works.
  const Response health = client.call(aux_request(RequestType::kHealth));
  EXPECT_TRUE(health.ok()) << health.status.to_string();

  const MetricsSnapshot snapshot = fixture.server().metrics().snapshot();
  // Oversized frames have their own counter; the two bad-shape frames
  // land in parse_errors.
  EXPECT_EQ(snapshot.counter(Counter::kParseErrors), 2u);
  EXPECT_EQ(snapshot.counter(Counter::kOversizedFrames), 1u);
  client.close();
}

TEST(ServerE2e, ColdTierServesAcrossServerRestarts) {
  const fs::path dir =
      fs::temp_directory_path() / "wi_serve_e2e_cold_tier";
  fs::remove_all(dir);

  Table first_table;
  {
    ServerOptions options = fast_options();
    options.store_dir = dir;
    options.version = "e2e-v1";
    ServerFixture fixture(std::move(options));
    const Response response =
        fixture.call(run_by_name("table1_link_budget", "cold-1"));
    ASSERT_TRUE(response.ok()) << response.status.to_string();
    EXPECT_EQ(response.tier, "run");
    ASSERT_TRUE(response.result.has_value());
    first_table = response.result->table;
  }
  {
    // Fresh process-equivalent: empty hot tier, same store directory.
    ServerOptions options = fast_options();
    options.store_dir = dir;
    options.version = "e2e-v1";
    ServerFixture fixture(std::move(options));
    const Response response =
        fixture.call(run_by_name("table1_link_budget", "cold-2"));
    ASSERT_TRUE(response.ok()) << response.status.to_string();
    EXPECT_EQ(response.tier, "cold") << "the on-disk result must be "
                                        "reused, not recomputed";
    ASSERT_TRUE(response.result.has_value());
    EXPECT_EQ(response.result->table, first_table);
    EXPECT_EQ(fixture.server().metrics().snapshot().counter(
                  Counter::kEngineRuns),
              0u);
  }
  fs::remove_all(dir);
}

TEST(ServerE2e, CampaignsDedupLikeScenarios) {
  ServerFixture fixture(fast_options());
  Request request;
  request.type = RequestType::kRunCampaign;
  request.id = "c1";
  request.scenario = "table1_link_budget";
  request.seeds = 2;
  request.base_seed = 7;
  const Response first = fixture.call(request);
  ASSERT_TRUE(first.ok()) << first.status.to_string();
  EXPECT_EQ(first.tier, "run");
  ASSERT_TRUE(first.result.has_value());

  request.id = "c2";
  const Response second = fixture.call(request);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.tier, "hot");
  EXPECT_EQ(second.result->table, first.result->table);

  // A different seed count is a different content key.
  request.id = "c3";
  request.seeds = 3;
  const Response third = fixture.call(request);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.tier, "run");
}

TEST(ServerE2e, ShutdownDrainsAcceptedWorkBeforeAnswering) {
  ensure_sleepy_registered();
  ServerOptions options;
  options.workers = 1;
  ServerFixture fixture(std::move(options));
  g_sleepy_ms.store(300);
  const int started_before = g_sleepy_started.load();

  // Client A: a slow job that must complete despite the shutdown.
  Response slow_response;
  std::thread slow_client([&] {
    Request request;
    request.type = RequestType::kRunScenario;
    request.id = "drain-me";
    request.spec = sleepy_spec("sleepy_drain");
    try {
      slow_response = fixture.call(request);
    } catch (const StatusError& error) {
      ADD_FAILURE() << error.status().to_string();
    }
  });
  // Wait until the worker actually started the job, so the shutdown
  // below races against a genuinely in-flight run.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (g_sleepy_started.load() == started_before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_GT(g_sleepy_started.load(), started_before)
      << "slow job never reached the worker";

  const Response ack =
      fixture.call(aux_request(RequestType::kShutdown, "bye"));
  EXPECT_TRUE(ack.ok()) << ack.status.to_string();
  EXPECT_EQ(ack.status.message(), "drained");
  // The shutdown response is only written after the drain, so the slow
  // job has finished by now.
  EXPECT_EQ(g_sleepy_completed.load(), g_sleepy_started.load());

  slow_client.join();
  ASSERT_TRUE(slow_response.ok()) << slow_response.status.to_string();
  ASSERT_TRUE(slow_response.result.has_value());

  fixture.server().wait();  // returns promptly: shutdown was signalled
  EXPECT_TRUE(fixture.server().draining());
  g_sleepy_ms.store(150);

  // New work is refused once draining.
  Client late;
  if (late.connect("127.0.0.1", fixture.port()).is_ok()) {
    try {
      const Response refused =
          late.call(run_by_name("fig01_pathloss", "late"));
      EXPECT_EQ(refused.status.code(), StatusCode::kUnavailable);
    } catch (const StatusError&) {
      // Equally acceptable: the listener is already gone.
    }
  }
}

TEST(ServerE2e, StopIsIdempotentAndGraceful) {
  ServerFixture fixture(fast_options());
  const Response health = fixture.call(aux_request(RequestType::kHealth));
  EXPECT_TRUE(health.ok());
  fixture.server().stop();
  fixture.server().stop();  // second stop is a no-op
  EXPECT_TRUE(fixture.server().draining());
}

}  // namespace
}  // namespace wi::serve

/// \file test_kernel_identity.cpp
/// \brief The optimized hot kernels must be output-identical — same
///        seeds, bitwise-equal results — to the frozen pre-optimization
///        implementations in wi_perf_baseline.
///
/// This is the contract the perf PR was built on: every sweep
/// ResultTable cell stays byte-identical because the kernels underneath
/// reproduce the baseline bit for bit (same RNG draw order, same
/// floating-point operation order). Both sides are compiled in this
/// binary, so EXPECT_DOUBLE_EQ is exact and portable.

#include <gtest/gtest.h>

#include "baseline_kernels.hpp"
#include "wi/comm/filter_design.hpp"
#include "wi/comm/info_rate.hpp"
#include "wi/noc/flit_sim.hpp"

namespace {

const wi::comm::Constellation& ask4() {
  static const wi::comm::Constellation c = wi::comm::Constellation::ask(4);
  return c;
}

TEST(KernelIdentity, SequenceInfoRate) {
  struct Case {
    const char* name;
    wi::comm::IsiFilter filter;
    double snr_db;
    wi::comm::SequenceRateOptions options;
  };
  const Case cases[] = {
      {"paper_25db", wi::comm::paper_filter_sequence(), 25.0, {20000, 7}},
      {"paper_5db", wi::comm::paper_filter_sequence(), 5.0, {20000, 7}},
      {"paper_seed11", wi::comm::paper_filter_sequence(), 15.0, {12000, 11}},
      {"suboptimal", wi::comm::paper_filter_suboptimal(), 18.0, {8000, 3}},
      {"rect_span1", wi::comm::IsiFilter::rectangular(5), 10.0, {9000, 42}},
      {"extreme_low_snr", wi::comm::paper_filter_sequence(), -35.0,
       {5000, 2}},
  };
  for (const Case& c : cases) {
    const wi::comm::OneBitOsChannel channel(c.filter, ask4(), c.snr_db);
    EXPECT_DOUBLE_EQ(
        wi::comm::info_rate_one_bit_sequence(channel, c.options),
        wi::perf_baseline::info_rate_one_bit_sequence(channel, c.options))
        << c.name;
  }
}

TEST(KernelIdentity, SymbolwiseMiAndConditionalEntropy) {
  for (const double snr : {-5.0, 5.0, 15.0, 25.0, 35.0}) {
    const wi::comm::OneBitOsChannel sym(wi::comm::paper_filter_symbolwise(),
                                        ask4(), snr);
    EXPECT_DOUBLE_EQ(wi::comm::mi_one_bit_symbolwise(sym),
                     wi::perf_baseline::mi_one_bit_symbolwise(sym))
        << "snr " << snr;
    const wi::comm::OneBitOsChannel seq(wi::comm::paper_filter_sequence(),
                                        ask4(), snr);
    EXPECT_DOUBLE_EQ(wi::comm::conditional_entropy_rate(seq),
                     wi::perf_baseline::conditional_entropy_rate(seq))
        << "snr " << snr;
  }
}

void expect_same_result(const wi::noc::FlitSimResult& a,
                        const wi::noc::FlitSimResult& b,
                        const char* label) {
  EXPECT_EQ(a.delivered, b.delivered) << label;
  EXPECT_EQ(a.injected, b.injected) << label;
  EXPECT_EQ(a.stable, b.stable) << label;
  EXPECT_DOUBLE_EQ(a.mean_latency_cycles, b.mean_latency_cycles) << label;
  EXPECT_DOUBLE_EQ(a.delivered_per_cycle, b.delivered_per_cycle) << label;
}

TEST(KernelIdentity, FlitSimulator) {
  wi::noc::FlitSimConfig config;
  config.warmup_cycles = 500;
  config.measure_cycles = 3000;
  config.drain_cycles = 3000;
  struct Case {
    const char* name;
    wi::noc::Topology topo;
    wi::noc::TrafficPattern traffic;
    double rate;
    std::uint64_t seed;
  };
  const Case cases[] = {
      {"mesh2d_uniform", wi::noc::Topology::mesh_2d(8, 8),
       wi::noc::TrafficPattern::uniform(64), 0.25, 1},
      {"mesh3d_transpose", wi::noc::Topology::mesh_3d(4, 4, 4),
       wi::noc::TrafficPattern::transpose(64), 0.15, 5},
      {"star_mesh_hotspot", wi::noc::Topology::star_mesh(4, 4, 4),
       wi::noc::TrafficPattern::hotspot(64, 0, 0.3), 0.1, 9},
      {"saturated", wi::noc::Topology::mesh_2d(4, 4),
       wi::noc::TrafficPattern::uniform(16), 0.9, 3},
  };
  const wi::noc::DimensionOrderRouting dor;
  const wi::noc::ShortestPathRouting sp;
  for (const Case& c : cases) {
    config.seed = c.seed;
    expect_same_result(
        wi::noc::simulate_network(c.topo, dor, c.traffic, c.rate, config),
        wi::perf_baseline::simulate_network(c.topo, dor, c.traffic, c.rate,
                                            config),
        c.name);
    expect_same_result(
        wi::noc::simulate_network(c.topo, sp, c.traffic, c.rate, config),
        wi::perf_baseline::simulate_network(c.topo, sp, c.traffic, c.rate,
                                            config),
        c.name);
  }
}

}  // namespace

#include "wi/rf/link_budget.hpp"

#include <gtest/gtest.h>

#include "wi/common/units.hpp"

namespace wi::rf {
namespace {

TEST(LinkBudget, TableIPathlossAnchors) {
  const LinkBudget budget;
  EXPECT_NEAR(budget.path_loss_db(kShortestLink_m), 59.8, 0.05);
  EXPECT_NEAR(budget.path_loss_db(kLongestLink_m), 69.3, 0.05);
}

TEST(LinkBudget, NoisePowerAt323K) {
  // kTB over 25 GHz at 323 K = -69.5 dBm; +10 dB NF = -59.5 dBm.
  const LinkBudget budget;
  EXPECT_NEAR(budget.noise_power_dbm(), -59.5, 0.1);
}

TEST(LinkBudget, RequiredPowerIsAffineInSnr) {
  const LinkBudget budget;
  const double p0 = budget.required_tx_power_dbm(0.0, 0.1, false);
  const double p10 = budget.required_tx_power_dbm(10.0, 0.1, false);
  const double p20 = budget.required_tx_power_dbm(20.0, 0.1, false);
  EXPECT_NEAR(p10 - p0, 10.0, 1e-9);
  EXPECT_NEAR(p20 - p10, 10.0, 1e-9);
}

TEST(LinkBudget, Fig4CurveSeparations) {
  // The three Fig. 4 curves are parallel: longest-shortest = pathloss
  // delta (9.5 dB); Butler adds exactly 5 dB on top.
  const LinkBudget budget;
  for (const double snr : {0.0, 15.0, 35.0}) {
    const double shortest =
        budget.required_tx_power_dbm(snr, kShortestLink_m, false);
    const double longest =
        budget.required_tx_power_dbm(snr, kLongestLink_m, false);
    const double butler =
        budget.required_tx_power_dbm(snr, kLongestLink_m, true);
    EXPECT_NEAR(longest - shortest, 9.54, 0.05);
    EXPECT_NEAR(butler - longest, 5.0, 1e-9);
  }
}

TEST(LinkBudget, Fig4RangeMatchesFigureAxes) {
  // Fig. 4 plots PTX from about -20 to +40 dBm over SNR 0..35 dB.
  const LinkBudget budget;
  EXPECT_NEAR(budget.required_tx_power_dbm(0.0, kShortestLink_m, false),
              -15.7, 0.5);
  EXPECT_NEAR(budget.required_tx_power_dbm(35.0, kLongestLink_m, true),
              33.8, 0.5);
}

TEST(LinkBudget, SnrInvertsRequiredPower) {
  const LinkBudget budget;
  for (const double snr : {3.0, 12.5, 27.0}) {
    const double ptx = budget.required_tx_power_dbm(snr, 0.2, true);
    EXPECT_NEAR(budget.snr_db(ptx, 0.2, true), snr, 1e-9);
  }
}

TEST(LinkBudget, GainsReduceRequiredPower) {
  LinkBudgetParams params;
  const LinkBudget base(params);
  params.array_gain_db = 15.0;  // bigger arrays
  const LinkBudget bigger(params);
  EXPECT_NEAR(base.required_tx_power_dbm(10.0, 0.1, false) -
                  bigger.required_tx_power_dbm(10.0, 0.1, false),
              6.0, 1e-9);  // 2 x 3 dB
}

TEST(LinkBudget, ShannonRateHitsPaperTarget) {
  // 25 GHz, dual polarization, ~2 bit/s/Hz -> 100 Gbit/s (Sec. II-B).
  const LinkBudget budget;
  const double snr_for_2bpcu = lin_to_db(3.0);  // log2(1+3) = 2
  EXPECT_NEAR(budget.shannon_rate_bps(snr_for_2bpcu, true) / 1e9, 100.0,
              0.1);
  // Single polarization carries half.
  EXPECT_NEAR(budget.shannon_rate_bps(snr_for_2bpcu, false) / 1e9, 50.0,
              0.1);
}

TEST(LinkBudget, RejectsInvalidParams) {
  LinkBudgetParams params;
  params.bandwidth_hz = 0.0;
  EXPECT_THROW(LinkBudget{params}, std::invalid_argument);
  params = {};
  params.rx_temperature_k = -1.0;
  EXPECT_THROW(LinkBudget{params}, std::invalid_argument);
}

}  // namespace
}  // namespace wi::rf

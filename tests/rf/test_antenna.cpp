#include "wi/rf/antenna.hpp"

#include <gtest/gtest.h>

namespace wi::rf {
namespace {

TEST(HornAntenna, BoresightGain) {
  const HornAntenna horn(10.0, 30.0);
  EXPECT_DOUBLE_EQ(horn.gain_dbi(0.0), 10.0);
}

TEST(HornAntenna, HalfPowerBeamwidth) {
  const HornAntenna horn(10.0, 30.0);
  // -3 dB at half the HPBW off boresight.
  EXPECT_NEAR(horn.gain_dbi(15.0), 7.0, 1e-9);
}

TEST(HornAntenna, SidelobeFloor) {
  const HornAntenna horn(10.0, 30.0);
  EXPECT_NEAR(horn.gain_dbi(90.0), -20.0, 1e-9);  // 10 - 30 floor
}

TEST(HornAntenna, PatternSymmetricAndMonotone) {
  const HornAntenna horn(9.5);
  EXPECT_DOUBLE_EQ(horn.gain_dbi(10.0), horn.gain_dbi(-10.0));
  double prev = horn.gain_dbi(0.0);
  for (double a = 2.0; a <= 40.0; a += 2.0) {
    const double g = horn.gain_dbi(a);
    EXPECT_LE(g, prev + 1e-12);
    prev = g;
  }
}

TEST(HornAntenna, RejectsBadBeamwidth) {
  EXPECT_THROW(HornAntenna(10.0, 0.0), std::invalid_argument);
}

TEST(PlanarArray, PaperArrayGain) {
  // Table I: 4x4 array -> 12 dB array gain.
  const PlanarArray array(4, 4);
  EXPECT_NEAR(array.broadside_gain_dbi(), 12.04, 0.05);
}

TEST(PlanarArray, GainScalesWithElements) {
  EXPECT_NEAR(PlanarArray(8, 8).broadside_gain_dbi() -
                  PlanarArray(4, 4).broadside_gain_dbi(),
              6.02, 0.01);
}

TEST(PlanarArray, ElementGainAdds) {
  const PlanarArray with_gain(4, 4, 3.0);
  const PlanarArray without(4, 4, 0.0);
  EXPECT_NEAR(with_gain.broadside_gain_dbi() - without.broadside_gain_dbi(),
              3.0, 1e-12);
}

TEST(PlanarArray, ArrayFactorPeaksAtSteeringAngle) {
  const PlanarArray array(4, 4);
  for (const double steer : {-30.0, 0.0, 20.0}) {
    EXPECT_NEAR(array.array_factor_db(steer, steer), 0.0, 1e-9);
    // Off the main lobe, power drops.
    EXPECT_LT(array.array_factor_db(steer + 25.0, steer), -1.0);
  }
}

TEST(PlanarArray, RejectsDegenerate) {
  EXPECT_THROW(PlanarArray(0, 4), std::invalid_argument);
  EXPECT_THROW(PlanarArray(4, 0), std::invalid_argument);
  EXPECT_THROW(PlanarArray(4, 4, 0.0, 0.0), std::invalid_argument);
}

TEST(ButlerMatrix, BeamCountAndCoverage) {
  const PlanarArray array(4, 4);
  const ButlerMatrixBeamformer butler(array, 4);
  ASSERT_EQ(butler.beam_angles_deg().size(), 4u);
  // Beams symmetric about broadside.
  EXPECT_NEAR(butler.beam_angles_deg()[0], -butler.beam_angles_deg()[3],
              1e-9);
}

TEST(ButlerMatrix, BestBeamIsNearestPattern) {
  const PlanarArray array(4, 4);
  const ButlerMatrixBeamformer butler(array, 4);
  // A target on a beam centre selects that beam.
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(butler.best_beam(butler.beam_angles_deg()[k]), k);
  }
}

TEST(ButlerMatrix, MismatchNearPaperBudget) {
  // Table I budgets 5 dB for the Butler matrix inaccuracy; the physical
  // model (scalloping between 4 fixed beams + network loss) should land
  // in that ballpark.
  const PlanarArray array(4, 4);
  const ButlerMatrixBeamformer butler(array, 4);
  const double mismatch = butler.worst_case_mismatch_db();
  EXPECT_GT(mismatch, 2.5);
  EXPECT_LT(mismatch, 8.0);
}

TEST(ButlerMatrix, EffectiveGainNeverExceedsIdeal) {
  const PlanarArray array(4, 4);
  const ButlerMatrixBeamformer butler(array, 4);
  for (double target = -60.0; target <= 60.0; target += 5.0) {
    EXPECT_LE(butler.effective_gain_dbi(target),
              array.gain_dbi(target, target) + 1e-9);
  }
}

TEST(ButlerMatrix, RejectsZeroBeams) {
  EXPECT_THROW(ButlerMatrixBeamformer(PlanarArray(4, 4), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace wi::rf

#include "wi/rf/campaign.hpp"

#include <gtest/gtest.h>

namespace wi::rf {
namespace {

TEST(Campaign, DefaultGridMatchesFigureAxis) {
  const auto grid = default_distance_grid_m();
  ASSERT_FALSE(grid.empty());
  EXPECT_DOUBLE_EQ(grid.front(), 0.02);
  EXPECT_DOUBLE_EQ(grid.back(), 0.2);  // Fig. 1 x-axis reaches 200 mm
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_NEAR(grid[i] - grid[i - 1], 0.01, 1e-12);
  }
}

TEST(Campaign, RejectsEmptyDistances) {
  CampaignConfig config;
  EXPECT_THROW(run_campaign(config), std::invalid_argument);
}

TEST(Campaign, PathlossIncreasesWithDistance) {
  CampaignConfig config;
  config.distances_m = {0.05, 0.1, 0.2};
  const auto points = run_campaign(config);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_LT(points[0].pathloss_db, points[1].pathloss_db);
  EXPECT_LT(points[1].pathloss_db, points[2].pathloss_db);
}

TEST(Campaign, FreeSpaceFitsExponentTwo) {
  // Fig. 1: the free-space measurement fits n = 2.000.
  CampaignConfig config;
  config.distances_m = default_distance_grid_m();
  config.copper_boards = false;
  const PathLossFit fit = run_and_fit(config);
  EXPECT_NEAR(fit.exponent, 2.000, 0.01);
  EXPECT_LT(fit.rmse_db, 0.5);
}

TEST(Campaign, CopperBoardsFitHigherExponent) {
  // Fig. 1: parallel copper boards fit n = 2.0454.
  CampaignConfig config;
  config.distances_m = default_distance_grid_m();
  config.copper_boards = true;
  const PathLossFit fit = run_and_fit(config);
  EXPECT_NEAR(fit.exponent, 2.0454, 0.02);
}

TEST(Campaign, MeasuredPointsTrackTheModel) {
  CampaignConfig config;
  config.distances_m = default_distance_grid_m();
  const auto points = run_campaign(config);
  const PathLossModel model = PathLossModel::free_space(232.5e9);
  for (const auto& p : points) {
    EXPECT_NEAR(p.pathloss_db, model.loss_db(p.distance_m), 1.5)
        << "d=" << p.distance_m;
  }
}

TEST(Campaign, DeterministicWithSeed) {
  CampaignConfig config;
  config.distances_m = {0.05, 0.1};
  config.vna.seed = 7;
  const auto a = run_campaign(config);
  const auto b = run_campaign(config);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].pathloss_db, b[i].pathloss_db);
  }
}

}  // namespace
}  // namespace wi::rf

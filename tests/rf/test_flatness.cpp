#include <gtest/gtest.h>

#include "wi/rf/channel.hpp"
#include "wi/rf/vna.hpp"

namespace wi::rf {
namespace {

TEST(Flatness, SingleTapIsFlat) {
  MultipathChannel channel;
  channel.add_tap({0.5e-9, -40.0, 0.0, "tap"});
  VnaConfig config;
  config.noise_floor_db = -150.0;
  SyntheticVna vna(config);
  EXPECT_LT(magnitude_ripple_db(vna.measure(channel)), 0.1);
}

TEST(Flatness, StrongEchoCausesRipple) {
  // Two taps 3 dB apart produce deep frequency-selective fading.
  MultipathChannel channel;
  channel.add_tap({0.3e-9, -40.0, 0.0, "los"});
  channel.add_tap({0.8e-9, -43.0, 0.0, "echo"});
  VnaConfig config;
  config.noise_floor_db = -150.0;
  SyntheticVna vna(config);
  EXPECT_GT(magnitude_ripple_db(vna.measure(channel)), 6.0);
}

class BoardChannelFlatnessTest
    : public ::testing::TestWithParam<std::tuple<double, bool>> {};

TEST_P(BoardChannelFlatnessTest, LargelyFrequencyFlat) {
  // Sec. VI: "the channel can be assumed to be static and largely
  // frequency flat". With all reflections >= 15 dB below LoS the ripple
  // over 220-245 GHz stays within a few dB.
  const auto [distance, copper] = GetParam();
  BoardToBoardScenario scenario;
  scenario.distance_m = distance;
  scenario.copper_boards = copper;
  VnaConfig config;
  config.noise_floor_db = -150.0;
  SyntheticVna vna(config);
  const double ripple =
      magnitude_ripple_db(vna.measure(board_to_board_channel(scenario)));
  EXPECT_LT(ripple, 3.0) << "d=" << distance << " copper=" << copper;
  EXPECT_GT(ripple, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, BoardChannelFlatnessTest,
    ::testing::Combine(::testing::Values(0.05, 0.1, 0.15, 0.3),
                       ::testing::Values(false, true)));

TEST(Flatness, RejectsEmptySweep) {
  EXPECT_THROW((void)magnitude_ripple_db(FrequencySweep{}), std::invalid_argument);
}

}  // namespace
}  // namespace wi::rf

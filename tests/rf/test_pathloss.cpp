#include "wi/rf/pathloss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "wi/common/rng.hpp"

namespace wi::rf {
namespace {

constexpr double kCarrier = 232.5e9;

TEST(Friis, PaperAnchors) {
  // Table I: 59.8 dB at 0.1 m and 69.3 dB at 0.3 m, 232.5 GHz.
  EXPECT_NEAR(friis_loss_db(0.1, kCarrier), 59.8, 0.05);
  EXPECT_NEAR(friis_loss_db(0.3, kCarrier), 69.3, 0.05);
}

TEST(Friis, SixDbPerDistanceDoubling) {
  const double base = friis_loss_db(0.05, kCarrier);
  EXPECT_NEAR(friis_loss_db(0.1, kCarrier) - base, 6.0206, 1e-3);
}

TEST(Friis, FrequencyScaling) {
  // Doubling the frequency adds 6 dB.
  EXPECT_NEAR(friis_loss_db(0.1, 2.0 * kCarrier) -
                  friis_loss_db(0.1, kCarrier),
              6.0206, 1e-3);
}

TEST(Friis, RejectsNonPositive) {
  EXPECT_THROW((void)friis_loss_db(0.0, kCarrier), std::invalid_argument);
  EXPECT_THROW((void)friis_loss_db(0.1, 0.0), std::invalid_argument);
}

TEST(PathLossModel, Eq1Evaluation) {
  // PL_d = PL_d0 + 10 n log10(d/d0) (Eq. 1 of the paper).
  const PathLossModel model(60.0, 2.0, 0.1);
  EXPECT_DOUBLE_EQ(model.loss_db(0.1), 60.0);
  EXPECT_NEAR(model.loss_db(1.0), 80.0, 1e-9);
  EXPECT_NEAR(model.loss_db(0.2), 60.0 + 20.0 * std::log10(2.0), 1e-9);
}

TEST(PathLossModel, FreeSpaceMatchesFriis) {
  const PathLossModel model = PathLossModel::free_space(kCarrier);
  for (const double d : {0.02, 0.1, 0.3, 1.0}) {
    EXPECT_NEAR(model.loss_db(d), friis_loss_db(d, kCarrier), 1e-9);
  }
}

TEST(PathLossModel, RejectsBadInput) {
  EXPECT_THROW(PathLossModel(60.0, 2.0, 0.0), std::invalid_argument);
  const PathLossModel model(60.0, 2.0, 0.1);
  EXPECT_THROW((void)model.loss_db(0.0), std::invalid_argument);
  EXPECT_THROW((void)model.loss_db(-1.0), std::invalid_argument);
}

TEST(FitPathLoss, RecoversExactModel) {
  const PathLossModel truth(59.8, 2.0454, 0.05);
  std::vector<PathLossPoint> points;
  for (double d = 0.02; d <= 0.2; d += 0.01) {
    points.push_back({d, truth.loss_db(d)});
  }
  const PathLossFit fit = fit_path_loss(points, 0.05);
  EXPECT_NEAR(fit.exponent, 2.0454, 1e-9);
  EXPECT_NEAR(fit.reference_loss_db, 59.8, 1e-9);
  EXPECT_NEAR(fit.rmse_db, 0.0, 1e-9);
}

TEST(FitPathLoss, RobustToNoise) {
  const PathLossModel truth(60.0, 2.0, 0.05);
  Rng rng(31);
  std::vector<PathLossPoint> points;
  for (double d = 0.02; d <= 0.2; d += 0.005) {
    points.push_back({d, truth.loss_db(d) + rng.gaussian(0.0, 0.3)});
  }
  const PathLossFit fit = fit_path_loss(points, 0.05);
  EXPECT_NEAR(fit.exponent, 2.0, 0.1);
  EXPECT_GT(fit.rmse_db, 0.0);
  EXPECT_LT(fit.rmse_db, 1.0);
}

TEST(FitPathLoss, RejectsDegenerateInput) {
  EXPECT_THROW((void)fit_path_loss({}, 0.05), std::invalid_argument);
  EXPECT_THROW((void)fit_path_loss({{0.1, 60.0}}, 0.05), std::invalid_argument);
  // Two identical distances cannot determine a slope.
  EXPECT_THROW((void)fit_path_loss({{0.1, 60.0}, {0.1, 61.0}}, 0.05),
               std::invalid_argument);
}

}  // namespace
}  // namespace wi::rf

#include "wi/rf/vna.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "wi/common/constants.hpp"

namespace wi::rf {
namespace {

MultipathChannel simple_channel(double delay_s, double gain_db) {
  MultipathChannel channel;
  channel.add_tap({delay_s, gain_db, 0.0, "tap"});
  return channel;
}

TEST(SyntheticVna, SweepDimensionsAndRange) {
  SyntheticVna vna;  // defaults: 220-245 GHz, 4096 points
  const FrequencySweep sweep = vna.measure(simple_channel(1e-9, -40.0));
  ASSERT_EQ(sweep.freqs_hz.size(), 4096u);
  ASSERT_EQ(sweep.s21.size(), 4096u);
  EXPECT_DOUBLE_EQ(sweep.freqs_hz.front(), 220e9);
  EXPECT_DOUBLE_EQ(sweep.freqs_hz.back(), 245e9);
  for (std::size_t i = 1; i < sweep.freqs_hz.size(); ++i) {
    EXPECT_GT(sweep.freqs_hz[i], sweep.freqs_hz[i - 1]);
  }
}

TEST(SyntheticVna, DeterministicWithSeed) {
  VnaConfig config;
  config.seed = 99;
  SyntheticVna a(config);
  SyntheticVna b(config);
  const auto sa = a.measure(simple_channel(1e-9, -40.0));
  const auto sb = b.measure(simple_channel(1e-9, -40.0));
  for (std::size_t i = 0; i < sa.s21.size(); ++i) {
    EXPECT_EQ(sa.s21[i], sb.s21[i]);
  }
}

TEST(SyntheticVna, RepeatMeasurementsDiffer) {
  SyntheticVna vna;
  const auto s1 = vna.measure(simple_channel(1e-9, -40.0));
  const auto s2 = vna.measure(simple_channel(1e-9, -40.0));
  // Same channel, different instrument noise (like a real VNA).
  bool any_different = false;
  for (std::size_t i = 0; i < s1.s21.size(); ++i) {
    if (s1.s21[i] != s2.s21[i]) {
      any_different = true;
      break;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(SyntheticVna, RejectsBadConfig) {
  VnaConfig config;
  config.points = 1;
  EXPECT_THROW(SyntheticVna{config}, std::invalid_argument);
  config.points = 100;
  config.f_stop_hz = config.f_start_hz;
  EXPECT_THROW(SyntheticVna{config}, std::invalid_argument);
}

TEST(ImpulseResponse, PeakAtTapDelay) {
  VnaConfig config;
  config.noise_floor_db = -140.0;
  SyntheticVna vna(config);
  const double tap_delay = 0.5e-9;
  const auto ir =
      to_impulse_response(vna.measure(simple_channel(tap_delay, -40.0)));
  std::size_t peak = 0;
  for (std::size_t i = 1; i < ir.magnitude_db.size(); ++i) {
    if (ir.magnitude_db[i] > ir.magnitude_db[peak]) peak = i;
  }
  EXPECT_NEAR(ir.delay_s[peak], tap_delay, 2.0 / 25e9);  // +/- 2 bins
}

TEST(ImpulseResponse, PeakAmplitudeCalibrated) {
  // The windowed IDFT is normalised so the tap amplitude is preserved.
  VnaConfig config;
  config.noise_floor_db = -150.0;
  SyntheticVna vna(config);
  const auto ir =
      to_impulse_response(vna.measure(simple_channel(0.5e-9, -43.0)));
  double peak = -1e9;
  for (const double v : ir.magnitude_db) peak = std::max(peak, v);
  // A tap midway between delay bins suffers up to ~1.4 dB of Hann
  // scalloping; the calibration bound accounts for that.
  EXPECT_NEAR(peak, -43.0, 1.6);
}

TEST(ImpulseResponse, TwoTapsResolved) {
  MultipathChannel channel;
  channel.add_tap({0.3e-9, -40.0, 0.0, "los"});
  channel.add_tap({0.9e-9, -55.0, 1.0, "echo"});
  VnaConfig config;
  config.noise_floor_db = -140.0;
  SyntheticVna vna(config);
  const auto ir = to_impulse_response(vna.measure(channel));
  EXPECT_NEAR(worst_reflection_rel_db(ir, 6), -15.0, 1.5);
}

TEST(ImpulseResponse, RejectsEmptySweep) {
  FrequencySweep sweep;
  EXPECT_THROW(to_impulse_response(sweep), std::invalid_argument);
}

TEST(ExtractPathloss, RecoverssTapLoss) {
  // A single -60 dB tap with 2x10 dB antennas: extracted pathloss should
  // be 60 + 20 = 80 dB when the gains are handed in.
  VnaConfig config;
  config.noise_floor_db = -150.0;
  SyntheticVna vna(config);
  const auto sweep = vna.measure(simple_channel(0.4e-9, -60.0));
  EXPECT_NEAR(extract_pathloss_db(sweep, 20.0), 80.0, 0.05);
}

TEST(ExtractPathloss, RejectsEmpty) {
  EXPECT_THROW((void)extract_pathloss_db(FrequencySweep{}, 0.0),
               std::invalid_argument);
}

TEST(WorstReflection, GuardExcludesMainLobe) {
  VnaConfig config;
  config.noise_floor_db = -150.0;
  SyntheticVna vna(config);
  const auto ir =
      to_impulse_response(vna.measure(simple_channel(0.5e-9, -40.0)));
  // With a reasonable guard the only "reflections" left are window
  // sidelobes and the noise floor, far below -15 dB.
  EXPECT_LT(worst_reflection_rel_db(ir, 8), -40.0);
}

}  // namespace
}  // namespace wi::rf

#include "wi/rf/channel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "wi/common/constants.hpp"

namespace wi::rf {
namespace {

TEST(MultipathChannel, SingleTapFrequencyResponse) {
  MultipathChannel channel;
  channel.add_tap({1e-9, -20.0, 0.0, "tap"});
  const cplx h = channel.frequency_response(232.5e9);
  EXPECT_NEAR(std::abs(h), std::pow(10.0, -1.0), 1e-9);  // -20 dB amp
}

TEST(MultipathChannel, TwoTapInterference) {
  // Two equal taps half a period apart cancel; a full period adds.
  const double f = 1e9;
  MultipathChannel channel;
  channel.add_tap({0.0, 0.0, 0.0, "a"});
  channel.add_tap({0.5 / f, 0.0, 0.0, "b"});
  EXPECT_NEAR(std::abs(channel.frequency_response(f)), 0.0, 1e-9);
  MultipathChannel aligned;
  aligned.add_tap({0.0, 0.0, 0.0, "a"});
  aligned.add_tap({1.0 / f, 0.0, 0.0, "b"});
  EXPECT_NEAR(std::abs(aligned.frequency_response(f)), 2.0, 1e-9);
}

TEST(MultipathChannel, StrongestTapQueries) {
  MultipathChannel channel({{1e-9, -40.0, 0.0, "weak"},
                            {2e-9, -30.0, 0.0, "strong"},
                            {3e-9, -55.0, 0.0, "weaker"}});
  EXPECT_DOUBLE_EQ(channel.strongest_tap_db(), -30.0);
  EXPECT_DOUBLE_EQ(channel.strongest_tap_delay_s(), 2e-9);
  EXPECT_DOUBLE_EQ(channel.worst_reflection_rel_db(), -10.0);
}

TEST(MultipathChannel, WorstReflectionDegenerate) {
  MultipathChannel empty;
  EXPECT_LT(empty.worst_reflection_rel_db(), -200.0);
  MultipathChannel single({{1e-9, -30.0, 0.0, "only"}});
  EXPECT_LT(single.worst_reflection_rel_db(), -200.0);
}

TEST(BoardToBoard, LosMatchesFriisMinusGains) {
  BoardToBoardScenario s;
  s.distance_m = 0.1;
  s.copper_boards = false;
  const MultipathChannel channel = board_to_board_channel(s);
  // LoS gain = -(Friis - 2 * 9.5 dB).
  EXPECT_NEAR(channel.strongest_tap_db(), -(59.78 - 19.0), 0.1);
}

TEST(BoardToBoard, LosDelayMatchesGeometry) {
  BoardToBoardScenario s;
  s.distance_m = 0.05;
  const MultipathChannel channel = board_to_board_channel(s);
  const double expected =
      (0.05 + 2.0 * s.waveguide_length_m) / kSpeedOfLight_mps;
  EXPECT_NEAR(channel.strongest_tap_delay_s(), expected, 1e-13);
}

TEST(BoardToBoard, FreespaceHasNoBoardCluster) {
  BoardToBoardScenario s;
  s.copper_boards = false;
  const MultipathChannel channel = board_to_board_channel(s);
  for (const auto& tap : channel.taps()) {
    EXPECT_EQ(tap.label.find("copper"), std::string::npos);
  }
}

TEST(BoardToBoard, CopperAddsBoardCluster) {
  BoardToBoardScenario s;
  s.copper_boards = true;
  const MultipathChannel channel = board_to_board_channel(s);
  int copper_taps = 0;
  for (const auto& tap : channel.taps()) {
    if (tap.label.find("copper") != std::string::npos) ++copper_taps;
  }
  EXPECT_EQ(copper_taps, 2);
}

class ReflectionLevelTest : public ::testing::TestWithParam<double> {};

TEST_P(ReflectionLevelTest, AllReflectionsAtLeast15dBDown) {
  // The paper's central measurement claim (Sec. II-A): reflections are
  // always at least 15 dB below the line of sight — for free space and
  // copper boards, at every link distance.
  for (const bool copper : {false, true}) {
    BoardToBoardScenario s;
    s.distance_m = GetParam();
    s.copper_boards = copper;
    const MultipathChannel channel = board_to_board_channel(s);
    EXPECT_LE(channel.worst_reflection_rel_db(), -15.0)
        << "distance " << GetParam() << " copper " << copper;
  }
}

INSTANTIATE_TEST_SUITE_P(Distances, ReflectionLevelTest,
                         ::testing::Values(0.05, 0.1, 0.15, 0.2, 0.3));

TEST(BoardToBoard, BounceClusterLaterThanLos) {
  BoardToBoardScenario s;
  s.distance_m = 0.05;
  s.copper_boards = true;
  const MultipathChannel channel = board_to_board_channel(s);
  const double los_delay = channel.strongest_tap_delay_s();
  for (const auto& tap : channel.taps()) {
    if (tap.label.find("copper") != std::string::npos) {
      EXPECT_GT(tap.delay_s, los_delay);
    }
  }
}

TEST(BoardToBoard, DiagonalLinkLongerDelay) {
  BoardToBoardScenario ahead;
  ahead.distance_m = 0.05;
  BoardToBoardScenario diagonal;
  diagonal.distance_m = 0.15;
  EXPECT_GT(board_to_board_channel(diagonal).strongest_tap_delay_s(),
            board_to_board_channel(ahead).strongest_tap_delay_s());
}

TEST(BoardToBoard, RejectsNonPositiveDistance) {
  BoardToBoardScenario s;
  s.distance_m = 0.0;
  EXPECT_THROW(board_to_board_channel(s), std::invalid_argument);
}

TEST(CopperExcessLoss, GrowsWithDistanceFromReference) {
  EXPECT_DOUBLE_EQ(copper_board_excess_loss_db(0.005), 0.0);
  EXPECT_GT(copper_board_excess_loss_db(0.1),
            copper_board_excess_loss_db(0.05));
  // 0.454 dB per decade by construction.
  EXPECT_NEAR(copper_board_excess_loss_db(0.1) -
                  copper_board_excess_loss_db(0.01),
              0.454, 1e-9);
}

}  // namespace
}  // namespace wi::rf

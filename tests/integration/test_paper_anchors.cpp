/// Integration tests pinning the paper's headline numbers across
/// modules — the quantitative contract of the reproduction.

#include <gtest/gtest.h>

#include "wi/comm/filter_design.hpp"
#include "wi/comm/info_rate.hpp"
#include "wi/fec/ber.hpp"
#include "wi/noc/queueing_model.hpp"
#include "wi/rf/campaign.hpp"
#include "wi/rf/link_budget.hpp"
#include "wi/rf/vna.hpp"

namespace wi {
namespace {

TEST(PaperAnchors, TableI) {
  const rf::LinkBudget budget;
  EXPECT_NEAR(budget.path_loss_db(0.1), 59.8, 0.05);
  EXPECT_NEAR(budget.path_loss_db(0.3), 69.3, 0.05);
  EXPECT_DOUBLE_EQ(budget.params().rx_noise_figure_db, 10.0);
  EXPECT_DOUBLE_EQ(budget.params().path_loss_exponent, 2.0);
  EXPECT_DOUBLE_EQ(budget.params().array_gain_db, 12.0);
  EXPECT_DOUBLE_EQ(budget.params().butler_inaccuracy_db, 5.0);
  EXPECT_DOUBLE_EQ(budget.params().polarization_mismatch_db, 3.0);
  EXPECT_DOUBLE_EQ(budget.params().implementation_loss_db, 5.0);
  EXPECT_DOUBLE_EQ(budget.params().rx_temperature_k, 323.0);
}

TEST(PaperAnchors, Fig1PathlossExponents) {
  rf::CampaignConfig config;
  config.distances_m = rf::default_distance_grid_m();
  config.copper_boards = false;
  EXPECT_NEAR(rf::run_and_fit(config).exponent, 2.000, 0.01);
  config.copper_boards = true;
  EXPECT_NEAR(rf::run_and_fit(config).exponent, 2.0454, 0.02);
}

TEST(PaperAnchors, Fig2Fig3ReflectionsBelow15dB) {
  for (const double distance : {0.05, 0.15}) {
    for (const bool copper : {false, true}) {
      rf::BoardToBoardScenario scenario;
      scenario.distance_m = distance;
      scenario.copper_boards = copper;
      rf::SyntheticVna vna;
      const auto ir = rf::to_impulse_response(
          vna.measure(rf::board_to_board_channel(scenario)));
      EXPECT_LE(rf::worst_reflection_rel_db(ir, 6), -15.0)
          << "d=" << distance << " copper=" << copper;
    }
  }
}

TEST(PaperAnchors, Fig4PowerRange) {
  // The figure's span: roughly -16 dBm (shortest @ SNR 0) to +34 dBm
  // (longest + Butler @ SNR 35).
  const rf::LinkBudget budget;
  EXPECT_NEAR(budget.required_tx_power_dbm(0.0, 0.1, false), -15.7, 0.5);
  EXPECT_NEAR(budget.required_tx_power_dbm(35.0, 0.3, true), 33.8, 0.5);
}

TEST(PaperAnchors, Fig6KeyLevels) {
  const comm::Constellation c4 = comm::Constellation::ask(4);
  // No quantization -> 2 bpcu; 1-bit no-OS -> 1 bpcu at 35 dB.
  EXPECT_NEAR(comm::mi_unquantized_awgn(c4, 35.0), 2.0, 0.01);
  EXPECT_NEAR(comm::mi_one_bit_no_oversampling(c4, 35.0), 1.0, 0.01);
  // Optimised ISI + sequence estimation approaches 2 bpcu at 25 dB.
  const comm::OneBitOsChannel seq(comm::paper_filter_sequence(), c4, 25.0);
  EXPECT_GT(comm::info_rate_one_bit_sequence(seq, {60000, 3}), 1.9);
  // Symbolwise optimised ISI far above the rect 1 bpcu.
  const comm::OneBitOsChannel sym(comm::paper_filter_symbolwise(), c4,
                                  25.0);
  EXPECT_GT(comm::mi_one_bit_symbolwise(sym), 1.55);
}

TEST(PaperAnchors, Fig8aLatencyAnchors) {
  const noc::DimensionOrderRouting routing;
  const noc::QueueingModel m2d(noc::Topology::mesh_2d(8, 8), routing,
                               noc::TrafficPattern::uniform(64));
  const noc::QueueingModel star(noc::Topology::star_mesh(4, 4, 4), routing,
                                noc::TrafficPattern::uniform(64));
  const noc::QueueingModel m3d(noc::Topology::mesh_3d(4, 4, 4), routing,
                               noc::TrafficPattern::uniform(64));
  EXPECT_NEAR(m2d.zero_load_latency_cycles(), 13.0, 0.75);
  EXPECT_NEAR(star.zero_load_latency_cycles(), 7.0, 0.75);
  EXPECT_NEAR(m3d.zero_load_latency_cycles(), 10.0, 0.75);
  EXPECT_NEAR(m2d.saturation_rate(), 0.41, 0.03);
  EXPECT_NEAR(star.saturation_rate(), 0.19, 0.03);
  EXPECT_GT(m3d.saturation_rate(), 0.65);  // paper: 0.75
}

TEST(PaperAnchors, Fig10WindowGainAtFixedEbn0) {
  // At a fixed Eb/N0 in the waterfall, W = 8 must beat W = 3 clearly
  // (the Fig. 10 mechanism), using the paper's ensemble at N = 25.
  const fec::LdpcConvolutionalCode code(fec::EdgeSpreading::paper_example(),
                                        25, 16, 5);
  fec::BerConfig config;
  config.ebn0_db = 2.5;
  config.min_errors = 80;
  config.max_codewords = 50;
  config.seed = 3;
  const double ber_w3 = fec::simulate_ber_window(code, 3, config).ber;
  const double ber_w8 = fec::simulate_ber_window(code, 8, config).ber;
  EXPECT_LT(ber_w8, ber_w3);
}

TEST(PaperAnchors, Fig10LatencyFormulaExample) {
  // The paper's worked example: T_WD = 200 info bits (N=40, W=5) vs
  // T_B = 400 (N=400) at equal code family.
  EXPECT_DOUBLE_EQ(fec::window_decoder_latency_bits(5, 40, 2, 0.5), 200.0);
  EXPECT_DOUBLE_EQ(fec::block_code_latency_bits(400, 2, 0.5), 400.0);
}

}  // namespace
}  // namespace wi

/// End-to-end pipeline tests: geometry -> link budget -> PHY -> coding
/// -> system NoC, exercising the public API the way the examples do.

#include <gtest/gtest.h>

#include "wi/core/coding_planner.hpp"
#include "wi/core/geometry.hpp"
#include "wi/core/hybrid_system.hpp"
#include "wi/core/link_planner.hpp"
#include "wi/core/phy_abstraction.hpp"
#include "wi/fec/ber.hpp"
#include "wi/fec/encoder.hpp"

namespace wi {
namespace {

TEST(EndToEnd, GeometryToRatePipeline) {
  const core::BoardGeometry geometry(2, 100.0, 100.0, 4);
  const core::WirelessLinkPlanner planner(rf::LinkBudgetParams{},
                                          core::Beamforming::kButlerMatrix);
  const auto links = planner.plan(geometry, 20.0, 15.0);
  ASSERT_FALSE(links.empty());

  const core::PhyAbstraction phy(core::PhyReceiver::kOneBitSequence);
  for (const auto& link : links) {
    const double rate = phy.link_rate_gbps(link.snr_db);
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 2.0 * 25.0 * 2.0);  // 2 bpcu * 25 GHz * 2 pol
  }
  // The best link should be usable for serious traffic.
  double best = 0.0;
  for (const auto& link : links) {
    best = std::max(best, phy.link_rate_gbps(link.snr_db));
  }
  EXPECT_GT(best, 40.0);
}

TEST(EndToEnd, CodedLinkClosesAtPlannedOperatingPoint) {
  // Pick a coding plan for a 250-bit latency budget and verify by
  // simulation that the planned code at ~0.5 dB above its tabulated
  // threshold decodes cleanly at moderate blocklength.
  const core::CodingPlanner planner = core::CodingPlanner::paper_table();
  const auto* point = planner.best_within_latency(250.0);
  ASSERT_NE(point, nullptr);
  ASSERT_FALSE(point->block_code);

  const fec::LdpcConvolutionalCode code(fec::EdgeSpreading::paper_example(),
                                        point->lifting, 16, 9);
  fec::BerConfig config;
  config.ebn0_db = point->required_ebn0_db + 1.0;
  config.min_errors = 30;
  config.max_codewords = 30;
  const fec::BerResult result =
      fec::simulate_ber_window(code, point->window, config);
  EXPECT_LT(result.ber, 5e-3);
}

TEST(EndToEnd, EncodedTrafficSurvivesWindowDecoding) {
  // Encode -> BPSK -> AWGN -> window decode -> compare, with a real
  // (non-zero) codeword, closing the full FEC loop.
  const fec::LdpcConvolutionalCode code(fec::EdgeSpreading::paper_example(),
                                        15, 10, 21);
  const fec::GaussianEncoder encoder(code.parity_check());
  Rng rng(77);
  std::vector<std::uint8_t> info(encoder.info_length());
  for (auto& b : info) b = static_cast<std::uint8_t>(rng.uniform_int(2));
  const auto codeword = encoder.encode(info);

  const double sigma = 0.6;
  std::vector<double> llr(codeword.size());
  for (std::size_t i = 0; i < codeword.size(); ++i) {
    const double tx = codeword[i] ? -1.0 : 1.0;
    llr[i] = 2.0 / (sigma * sigma) * (tx + sigma * rng.gaussian());
  }
  const fec::WindowDecoder decoder(code, 5);
  const auto result = decoder.decode(llr);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < codeword.size(); ++i) {
    if (result.hard[i] != codeword[i]) ++errors;
  }
  EXPECT_EQ(errors, 0u);
}

TEST(EndToEnd, SystemComparisonIsInternallyConsistent) {
  core::HybridSystemConfig config;
  config.boards = 3;
  config.mesh_k = 3;
  const core::HybridSystemModel model(config);
  const core::HybridComparison cmp = model.compare();
  EXPECT_NEAR(cmp.capacity_gain,
              cmp.wireless.saturation_rate / cmp.backplane.saturation_rate,
              1e-12);
  EXPECT_GT(cmp.backplane.latency_at_low_load,
            cmp.backplane.zero_load_latency_cycles - 1e-9);
  EXPECT_GT(cmp.wireless.latency_at_low_load,
            cmp.wireless.zero_load_latency_cycles - 1e-9);
}

TEST(EndToEnd, PhyRateFeedsNocBandwidth) {
  // Convert the PHY link rate into NoC channel bandwidth units and make
  // sure the hybrid model accepts heterogeneous values.
  const core::PhyAbstraction phy(core::PhyReceiver::kOneBitSequence);
  const double rate_gbps = phy.link_rate_gbps(25.0);
  core::HybridSystemConfig config;
  config.wireless_bandwidth = rate_gbps / 100.0;  // 100 Gbit/s = 1 flit/cyc
  const core::HybridSystemModel model(config);
  const auto eval = model.evaluate(model.build_wireless_topology());
  EXPECT_GT(eval.saturation_rate, 0.0);
}

}  // namespace
}  // namespace wi

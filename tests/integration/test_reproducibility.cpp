/// Determinism contract: every stochastic component reproduces
/// bit-identical results from the same seed — the property that makes
/// each bench regenerate its table exactly.

#include <gtest/gtest.h>

#include "wi/comm/filter_design.hpp"
#include "wi/comm/info_rate.hpp"
#include "wi/common/math.hpp"
#include "wi/fec/ber.hpp"
#include "wi/noc/flit_sim.hpp"
#include "wi/rf/campaign.hpp"
#include "wi/sim/sim.hpp"

namespace wi {
namespace {

TEST(Reproducibility, CampaignBitIdentical) {
  rf::CampaignConfig config;
  config.distances_m = {0.05, 0.1, 0.15};
  config.copper_boards = true;
  config.vna.seed = 42;
  const auto a = rf::run_campaign(config);
  const auto b = rf::run_campaign(config);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pathloss_db, b[i].pathloss_db);
  }
}

TEST(Reproducibility, SequenceRateBitIdentical) {
  const comm::OneBitOsChannel channel(comm::paper_filter_sequence(),
                                      comm::Constellation::ask(4), 12.0);
  EXPECT_EQ(comm::info_rate_one_bit_sequence(channel, {15000, 5}),
            comm::info_rate_one_bit_sequence(channel, {15000, 5}));
}

TEST(Reproducibility, BerSimulationBitIdentical) {
  const fec::LdpcConvolutionalCode code(fec::EdgeSpreading::paper_example(),
                                        20, 10, 3);
  fec::BerConfig config;
  config.ebn0_db = 2.0;
  config.max_codewords = 8;
  config.min_errors = 1000000;
  config.seed = 9;
  const auto a = fec::simulate_ber_window(code, 4, config);
  const auto b = fec::simulate_ber_window(code, 4, config);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.bits, b.bits);
}

TEST(Reproducibility, CodeConstructionBitIdentical) {
  const fec::LdpcConvolutionalCode a(fec::EdgeSpreading::paper_example(),
                                     30, 12, 77);
  const fec::LdpcConvolutionalCode b(fec::EdgeSpreading::paper_example(),
                                     30, 12, 77);
  ASSERT_EQ(a.parity_check().rows(), b.parity_check().rows());
  for (std::size_t r = 0; r < a.parity_check().rows(); ++r) {
    EXPECT_EQ(a.parity_check().row(r), b.parity_check().row(r));
  }
  // A different seed gives a different lifting.
  const fec::LdpcConvolutionalCode c(fec::EdgeSpreading::paper_example(),
                                     30, 12, 78);
  bool any_diff = false;
  for (std::size_t r = 0; r < a.parity_check().rows() && !any_diff; ++r) {
    any_diff = a.parity_check().row(r) != c.parity_check().row(r);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Reproducibility, FlitSimBitIdentical) {
  const noc::Topology topo = noc::Topology::mesh_2d(4, 4);
  const noc::DimensionOrderRouting routing;
  const noc::TrafficPattern traffic = noc::TrafficPattern::uniform(16);
  noc::FlitSimConfig config;
  config.warmup_cycles = 500;
  config.measure_cycles = 2000;
  config.seed = 13;
  const auto a = noc::simulate_network(topo, routing, traffic, 0.1, config);
  const auto b = noc::simulate_network(topo, routing, traffic, 0.1, config);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.mean_latency_cycles, b.mean_latency_cycles);
}

TEST(Reproducibility, ParallelSweepMatchesSingleThreaded) {
  // The sim acceptance contract: a registry-driven sweep of >= 100 grid
  // points run through the work-stealing parallel runner reproduces the
  // single-threaded ResultTable cell-for-cell, and repeated receiver
  // configurations are served from the PhyCurveCache.
  const sim::ScenarioSpec base =
      sim::ScenarioRegistry::paper().get("quickstart_link_rate");
  const std::vector<sim::SweepAxis> axes = {
      {"ptx",
       linspace(0.0, 18.0, 10),
       [](sim::ScenarioSpec& spec, double value) {
         spec.link.ptx_dbm = value;
       }},
      {"sep",
       linspace(60.0, 150.0, 10),
       [](sim::ScenarioSpec& spec, double value) {
         spec.geometry.separation_mm = value;
       }},
  };

  sim::SimEngine serial_engine;
  const sim::RunResult serial = serial_engine.run_sweep(base, axes, 1);
  sim::SimEngine parallel_engine;
  const sim::RunResult parallel = parallel_engine.run_sweep(base, axes, 4);

  ASSERT_GE(serial.table.rows(), 100u);
  EXPECT_TRUE(serial.table == parallel.table);

  // 100 grid points share one receiver configuration: one build, the
  // rest are cache hits — at both thread counts.
  EXPECT_EQ(serial_engine.phy_cache().misses(), 1u);
  EXPECT_GE(serial_engine.phy_cache().hits(), 99u);
  EXPECT_EQ(parallel_engine.phy_cache().misses(), 1u);
  EXPECT_GE(parallel_engine.phy_cache().hits(), 99u);
}

TEST(Reproducibility, ParallelRunAllBitIdentical) {
  // Scenario campaigns seed their own RNGs, so whole-scenario results
  // are thread-count invariant too (incl. the stochastic Fig. 1 run).
  const auto& registry = sim::ScenarioRegistry::paper();
  const std::vector<sim::ScenarioSpec> specs = {
      registry.get("fig01_pathloss"),
      registry.get("fig04_tx_power"),
      registry.get("fig08a_star_mesh_4x4c4"),
      registry.get("ablation_hybrid_system"),
  };
  sim::SimEngine engine_a;
  sim::SimEngine engine_b;
  const auto serial = engine_a.run_all(specs, 1);
  const auto parallel = engine_b.run_all(specs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].scenario, parallel[i].scenario);
    EXPECT_TRUE(serial[i].status == parallel[i].status);
    EXPECT_TRUE(serial[i].table == parallel[i].table);
    EXPECT_EQ(serial[i].notes, parallel[i].notes);
  }
}

TEST(Reproducibility, FilterOptimizerBitIdentical) {
  comm::FilterDesignOptions options;
  options.max_evals = 150;
  options.restarts = 1;
  const comm::Constellation c4 = comm::Constellation::ask(4);
  const auto a = comm::optimize_filter_symbolwise(c4, options);
  const auto b = comm::optimize_filter_symbolwise(c4, options);
  EXPECT_EQ(a.taps(), b.taps());
}

}  // namespace
}  // namespace wi

/// Cross-validation of the analytic queueing model against the
/// independent flit-level simulator — the evidence that Fig. 8's curves
/// are trustworthy. The campaign-level test at the bottom promotes the
/// single-seed spot check to multi-seed aggregates: the *mean over
/// seeds* of the DES latency must agree with the analytic prediction.

#include <gtest/gtest.h>

#include <string>

#include "wi/common/table_io.hpp"
#include "wi/noc/flit_sim.hpp"
#include "wi/noc/queueing_model.hpp"
#include "wi/sim/campaign.hpp"
#include "wi/sim/workloads/flit_sim.hpp"

namespace wi::noc {
namespace {

struct Case {
  const char* name;
  Topology topology;
  double injection;
};

class ModelVsDesTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ModelVsDesTest, LatencyAgreesBelowSaturation) {
  const auto [topo_id, rate] = GetParam();
  const Topology topology = [&] {
    switch (topo_id) {
      case 0:
        return Topology::mesh_2d(8, 8);
      case 1:
        return Topology::mesh_3d(4, 4, 4);
      default:
        return Topology::star_mesh(4, 4, 4);
    }
  }();
  const DimensionOrderRouting routing;
  const TrafficPattern traffic =
      TrafficPattern::uniform(topology.module_count());
  const QueueingModel model(topology, routing, traffic);
  if (rate > 0.7 * model.saturation_rate()) {
    // Near saturation the M/M/1 waits diverge from the deterministic-
    // service DES (an M/D/1-like system with half the queueing delay).
    GTEST_SKIP() << "operating point too close to saturation";
  }
  FlitSimConfig config;
  config.warmup_cycles = 2000;
  config.measure_cycles = 10000;
  config.seed = 17;
  const FlitSimResult des =
      simulate_network(topology, routing, traffic, rate, config);
  const double analytic = model.evaluate(rate).mean_latency_cycles;
  ASSERT_TRUE(des.stable);
  // 20% agreement band: the DES has finite buffers and round-robin
  // arbitration the M/M/1 model idealises away.
  EXPECT_NEAR(des.mean_latency_cycles, analytic, 0.20 * analytic);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelVsDesTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0.05, 0.1, 0.15)));

TEST(ModelVsDes, ThroughputSaturatesNearPredictedCapacity) {
  // Push the 2D mesh past its analytic capacity; the DES delivered
  // throughput should plateau near the predicted saturation rate.
  const Topology topology = Topology::mesh_2d(8, 8);
  const DimensionOrderRouting routing;
  const TrafficPattern traffic = TrafficPattern::uniform(64);
  const QueueingModel model(topology, routing, traffic);
  const double capacity = model.saturation_rate();

  FlitSimConfig config;
  config.warmup_cycles = 2000;
  config.measure_cycles = 10000;
  config.drain_cycles = 0;
  const FlitSimResult des =
      simulate_network(topology, routing, traffic, 0.9, config);
  EXPECT_NEAR(des.delivered_per_cycle, capacity, 0.35 * capacity);
}

TEST(ModelVsDes, OrderingPreservedAcrossTopologies) {
  // Independent of calibration, both tools must rank the topologies the
  // same way at a common operating point.
  const DimensionOrderRouting routing;
  auto latency_pair = [&](const Topology& topo) {
    const TrafficPattern traffic =
        TrafficPattern::uniform(topo.module_count());
    const QueueingModel model(topo, routing, traffic);
    FlitSimConfig config;
    config.warmup_cycles = 1500;
    config.measure_cycles = 8000;
    const FlitSimResult des =
        simulate_network(topo, routing, traffic, 0.1, config);
    return std::pair<double, double>(model.evaluate(0.1).mean_latency_cycles,
                                     des.mean_latency_cycles);
  };
  const auto [a2d, d2d] = latency_pair(Topology::mesh_2d(8, 8));
  const auto [a3d, d3d] = latency_pair(Topology::mesh_3d(4, 4, 4));
  const auto [astar, dstar] = latency_pair(Topology::star_mesh(4, 4, 4));
  // Analytic: star < 3D < 2D. DES must agree.
  EXPECT_LT(astar, a3d);
  EXPECT_LT(a3d, a2d);
  EXPECT_LT(dstar, d3d);
  EXPECT_LT(d3d, d2d);
}

/// Satellite: the model-vs-DES check promoted to campaign aggregates.
/// At low injection rates the seed-averaged flit-sim latency of the
/// 8x8 mesh must agree with the queueing-model prediction — per rate,
/// using the campaign's own confidence interval plus a modelling band.
TEST(ModelVsDes, CampaignMeanLatencyTracksQueueingModel) {
  const std::vector<double> rates = {0.05, 0.1};
  sim::CampaignSpec spec;
  spec.seeds = 5;
  spec.base_seed = 7;
  spec.scenario.name = "flit_mesh2d_8x8_lowrate";
  spec.scenario.workload = "flit_sim";
  spec.scenario.noc.topology.kind = sim::TopologySpec::Kind::kMesh2d;
  spec.scenario.noc.topology.kx = 8;
  spec.scenario.noc.topology.ky = 8;
  auto& flit = spec.scenario.payload<sim::FlitSimSpec>();
  flit.warmup_cycles = 1000;
  flit.measure_cycles = 5000;
  flit.injection_rates = rates;

  sim::SimEngine engine({2});
  const sim::Campaign campaign(spec);
  const sim::CampaignResult result = campaign.run(engine);
  ASSERT_TRUE(result.ok()) << result.status.to_string();

  const Topology topology = Topology::mesh_2d(8, 8);
  const DimensionOrderRouting routing;
  const TrafficPattern traffic = TrafficPattern::uniform(64);
  const QueueingModel model(topology, routing, traffic);

  // Pull the latency_cycles aggregate rows out of the long-format table.
  std::size_t checked = 0;
  for (std::size_t r = 0; r < result.aggregate.rows(); ++r) {
    if (result.aggregate.cell(r, 2) != "latency_cycles") continue;
    const double rate = std::stod(result.aggregate.cell(r, 1));
    const double mean = std::stod(result.aggregate.cell(r, 4));
    const double ci = std::stod(result.aggregate.cell(r, 8));
    const double analytic = model.evaluate(rate).mean_latency_cycles;
    // 20% modelling band (finite buffers, round-robin arbitration)
    // widened by the campaign's own statistical uncertainty.
    EXPECT_NEAR(mean, analytic, 0.20 * analytic + ci)
        << "injection rate " << rate;
    ++checked;
  }
  EXPECT_EQ(checked, rates.size());
}

}  // namespace
}  // namespace wi::noc

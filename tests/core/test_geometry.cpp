#include "wi/core/geometry.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wi::core {
namespace {

TEST(Geometry, DistanceAndAngle) {
  const Position a{0.0, 0.0, 0.0};
  const Position b{30.0, 40.0, 0.0};
  EXPECT_DOUBLE_EQ(distance_mm(a, b), 50.0);
  const Position c{0.0, 0.0, 100.0};
  EXPECT_DOUBLE_EQ(distance_mm(a, c), 100.0);
  EXPECT_DOUBLE_EQ(boresight_angle_deg(a, c), 0.0);  // straight ahead
  const Position d{100.0, 0.0, 100.0};
  EXPECT_NEAR(boresight_angle_deg(a, d), 45.0, 1e-9);
}

TEST(Geometry, BoardGridLayout) {
  const BoardGeometry geometry(2, 100.0, 100.0, 4);
  EXPECT_EQ(geometry.board_count(), 2u);
  EXPECT_EQ(geometry.nodes_per_board(), 16u);
  EXPECT_EQ(geometry.node_count(), 32u);
  // First node at half pitch = 12.5 mm; boards at z = 0 and 100.
  EXPECT_DOUBLE_EQ(geometry.node(0).position.x_mm, 12.5);
  EXPECT_DOUBLE_EQ(geometry.node(0).position.z_mm, 0.0);
  EXPECT_DOUBLE_EQ(geometry.node(16).position.z_mm, 100.0);
  EXPECT_EQ(geometry.node(16).board, 1u);
}

TEST(Geometry, PaperLinkExtremes) {
  // Sec. II-B: ahead link 100 mm, diagonal link 300 mm for two boards
  // 100 mm apart. With nodes spread over ~10 cm the corner-to-corner
  // diagonal approaches sqrt(2 * 87.5^2 + 100^2) ~ 159 mm for a 4x4
  // grid; the paper's 300 mm corresponds to boards of 2x the span —
  // check both the formula and the paper numbers via a wider board.
  const BoardGeometry small(2, 100.0, 100.0, 4);
  EXPECT_DOUBLE_EQ(small.shortest_link_mm(), 100.0);
  const double span = 100.0 - 100.0 / 4.0;
  EXPECT_NEAR(small.longest_link_mm(),
              std::sqrt(2.0 * span * span + 100.0 * 100.0), 1e-9);

  // sqrt(2 * 200^2 + 100^2) = 300: the paper's diagonal-link extreme.
  const BoardGeometry paper(2, 400.0, 100.0, 2);
  EXPECT_NEAR(paper.longest_link_mm(), 300.0, 1e-9);
}

TEST(Geometry, AdjacentBoardPairs) {
  const BoardGeometry geometry(3, 100.0, 50.0, 2);
  const auto pairs = geometry.adjacent_board_pairs();
  // 4 nodes per board, 2 adjacent board gaps -> 2 * 16 ordered pairs.
  EXPECT_EQ(pairs.size(), 32u);
  for (const auto& [a, b] : pairs) {
    EXPECT_EQ(geometry.node(b).board, geometry.node(a).board + 1);
  }
}

TEST(Geometry, RejectsDegenerate) {
  EXPECT_THROW(BoardGeometry(0, 100.0, 100.0, 4), std::invalid_argument);
  EXPECT_THROW(BoardGeometry(2, 0.0, 100.0, 4), std::invalid_argument);
  EXPECT_THROW(BoardGeometry(2, 100.0, -1.0, 4), std::invalid_argument);
  EXPECT_THROW(BoardGeometry(2, 100.0, 100.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace wi::core

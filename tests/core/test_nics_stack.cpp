#include "wi/core/nics_stack.hpp"

#include <gtest/gtest.h>

namespace wi::core {
namespace {

TEST(NicsStack, TechnologyParameters) {
  const auto tsv = vertical_link_params(VerticalLinkTech::kTsv);
  const auto inductive = vertical_link_params(VerticalLinkTech::kInductive);
  const auto capacitive =
      vertical_link_params(VerticalLinkTech::kCapacitive);
  // Sec. IV: vertical inter-chip links are expected to offer more
  // bandwidth than planar wires — TSVs at 2x — but cost area.
  EXPECT_GT(tsv.bandwidth, 1.0);
  EXPECT_GT(tsv.area_cost, inductive.area_cost);
  EXPECT_GT(inductive.area_cost, capacitive.area_cost);
  EXPECT_GE(inductive.bandwidth, capacitive.bandwidth);
}

TEST(NicsStack, FullVerticalTopology) {
  NicsStackConfig config;
  config.layers = 4;
  config.mesh_k = 4;
  const NicsStackModel model(config);
  const auto topo = model.build_topology();
  EXPECT_EQ(topo.module_count(), 64u);
  std::size_t vertical = 0;
  for (const auto& link : topo.links()) {
    if (link.vertical) {
      ++vertical;
      EXPECT_DOUBLE_EQ(link.bandwidth, 2.0);  // TSV default
    }
  }
  EXPECT_EQ(vertical, 2u * 16u * 3u);  // 16 columns x 3 gaps x 2 dirs
}

TEST(NicsStack, SparserVerticalsDegradePerformance) {
  auto eval_at = [](std::size_t period) {
    NicsStackConfig config;
    config.vertical_period = period;
    return NicsStackModel(config).evaluate();
  };
  const auto dense = eval_at(1);
  const auto sparse = eval_at(3);
  EXPECT_LT(dense.zero_load_latency_cycles,
            sparse.zero_load_latency_cycles);
  EXPECT_GE(dense.saturation_rate, sparse.saturation_rate);
  EXPECT_GT(dense.vertical_link_count, sparse.vertical_link_count);
  EXPECT_GT(dense.area_cost, sparse.area_cost);
}

TEST(NicsStack, TsvFastestButCostliest) {
  auto eval_tech = [](VerticalLinkTech tech) {
    NicsStackConfig config;
    config.tech = tech;
    // A vertical-heavy mix makes the vertical bandwidth binding.
    config.vertical_traffic_fraction = 0.6;
    return NicsStackModel(config).evaluate();
  };
  const auto tsv = eval_tech(VerticalLinkTech::kTsv);
  const auto capacitive = eval_tech(VerticalLinkTech::kCapacitive);
  EXPECT_GT(tsv.saturation_rate, capacitive.saturation_rate);
  EXPECT_GT(tsv.area_cost, capacitive.area_cost);
}

TEST(NicsStack, VerticalTrafficStressesVerticalLinks) {
  NicsStackConfig uniform;
  NicsStackConfig vertical;
  vertical.vertical_traffic_fraction = 0.8;
  vertical.tech = VerticalLinkTech::kCapacitive;  // weakest verticals
  uniform.tech = VerticalLinkTech::kCapacitive;
  const auto u = NicsStackModel(uniform).evaluate();
  const auto v = NicsStackModel(vertical).evaluate();
  EXPECT_LT(v.saturation_rate, u.saturation_rate + 1e-9);
}

TEST(NicsStack, RejectsBadVerticalFraction) {
  NicsStackConfig config;
  config.vertical_traffic_fraction = 1.5;
  EXPECT_THROW(NicsStackModel{config}, std::invalid_argument);
}

TEST(NicsStack, AreaBandwidthTradeoffExists) {
  // The paper's future-work point: sparse TSVs trade performance for
  // area. Halving the TSV count (period 2) should save ~half the area
  // while losing some but not all capacity.
  NicsStackConfig dense_config;
  const auto dense = NicsStackModel(dense_config).evaluate();
  NicsStackConfig sparse_config;
  sparse_config.vertical_period = 2;
  const auto sparse = NicsStackModel(sparse_config).evaluate();
  EXPECT_LT(sparse.area_cost, 0.7 * dense.area_cost);
  EXPECT_GT(sparse.saturation_rate, 0.25 * dense.saturation_rate);
}

TEST(NicsStack, RejectsDegenerateConfig) {
  NicsStackConfig config;
  config.layers = 0;
  EXPECT_THROW(NicsStackModel{config}, std::invalid_argument);
  config = {};
  config.vertical_period = 0;
  EXPECT_THROW(NicsStackModel{config}, std::invalid_argument);
}

}  // namespace
}  // namespace wi::core

#include "wi/core/phy_abstraction.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wi::core {
namespace {

TEST(PhyAbstraction, UnquantizedReachesTwoBpcu) {
  const PhyAbstraction phy(PhyReceiver::kUnquantized);
  EXPECT_NEAR(phy.info_rate_bpcu(35.0), 2.0, 0.01);
  EXPECT_LT(phy.info_rate_bpcu(-5.0), 0.5);
}

TEST(PhyAbstraction, RateMonotoneInSnr) {
  const PhyAbstraction phy(PhyReceiver::kOneBitSymbolwise);
  double prev = -1.0;
  for (double snr = -5.0; snr <= 35.0; snr += 2.5) {
    const double rate = phy.info_rate_bpcu(snr);
    EXPECT_GE(rate, prev - 1e-9);
    prev = rate;
  }
}

TEST(PhyAbstraction, SequenceBeatsSymbolwiseAtHighSnr) {
  const PhyAbstraction seq(PhyReceiver::kOneBitSequence);
  const PhyAbstraction sym(PhyReceiver::kOneBitSymbolwise);
  EXPECT_GT(seq.info_rate_bpcu(30.0), sym.info_rate_bpcu(30.0));
}

TEST(PhyAbstraction, LinkRateScalesWithBandwidthAndPol) {
  const PhyAbstraction dual(PhyReceiver::kUnquantized, 25e9, 2);
  const PhyAbstraction single(PhyReceiver::kUnquantized, 25e9, 1);
  EXPECT_NEAR(dual.link_rate_gbps(20.0) / single.link_rate_gbps(20.0), 2.0,
              1e-9);
  // 2 bpcu * 25 GHz * 2 pol = 100 Gbit/s — the paper's headline number.
  EXPECT_NEAR(dual.link_rate_gbps(35.0), 100.0, 1.0);
}

TEST(PhyAbstraction, RequiredSnrInvertsRate) {
  const PhyAbstraction phy(PhyReceiver::kUnquantized);
  const double target = 60.0;  // Gbit/s
  const double snr = phy.required_snr_db(target);
  EXPECT_NEAR(phy.link_rate_gbps(snr), target, 1.0);
}

TEST(PhyAbstraction, UnreachableRateIsInfinite) {
  const PhyAbstraction phy(PhyReceiver::kOneBitRect);
  EXPECT_TRUE(std::isinf(phy.required_snr_db(500.0)));
}

TEST(PhyAbstraction, ClampsOutsideGrid) {
  const PhyAbstraction phy(PhyReceiver::kUnquantized);
  EXPECT_DOUBLE_EQ(phy.info_rate_bpcu(-50.0), phy.info_rate_bpcu(-5.0));
  EXPECT_DOUBLE_EQ(phy.info_rate_bpcu(90.0), phy.info_rate_bpcu(35.0));
}

TEST(PhyAbstraction, ParallelBuildBitIdenticalToSerial) {
  // Every SNR grid point is an independent deterministically seeded
  // computation, so the thread count must not change a single bit of
  // the curve (the sweep engine relies on this for reproducibility).
  for (const PhyReceiver receiver :
       {PhyReceiver::kOneBitSequence, PhyReceiver::kOneBitSymbolwise,
        PhyReceiver::kUnquantized}) {
    const PhyAbstraction serial(receiver, 25e9, 2, 1);
    const PhyAbstraction parallel(receiver, 25e9, 2, 4);
    ASSERT_EQ(serial.rate_curve_bpcu().size(),
              parallel.rate_curve_bpcu().size());
    for (std::size_t i = 0; i < serial.rate_curve_bpcu().size(); ++i) {
      EXPECT_DOUBLE_EQ(serial.rate_curve_bpcu()[i],
                       parallel.rate_curve_bpcu()[i])
          << "receiver " << static_cast<int>(receiver) << " grid point "
          << i;
    }
  }
}

TEST(PhyAbstraction, SequenceCurveGolden) {
  // Pinned from the pre-optimization build: interpolated rates and the
  // 100 Gbit/s requirement for the paper's sequence receiver.
  const PhyAbstraction phy(PhyReceiver::kOneBitSequence);
  EXPECT_NEAR(phy.info_rate_bpcu(10.0), 1.5587453180489799, 1e-9);
  EXPECT_NEAR(phy.info_rate_bpcu(25.0), 1.9583489344780356, 1e-9);
  EXPECT_TRUE(std::isinf(phy.required_snr_db(100.0)));
}

}  // namespace
}  // namespace wi::core

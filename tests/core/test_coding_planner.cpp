#include "wi/core/coding_planner.hpp"

#include <gtest/gtest.h>

namespace wi::core {
namespace {

TEST(CodingPlanner, PaperTableNonEmptyAndConsistent) {
  const CodingPlanner planner = CodingPlanner::paper_table();
  EXPECT_GT(planner.points().size(), 10u);
  for (const auto& p : planner.points()) {
    // Eq. 4/5 with R = 1/2, nv = 2: latency = W*N (CC) or N (BC).
    const double expected = p.block_code
                                ? static_cast<double>(p.lifting)
                                : static_cast<double>(p.lifting * p.window);
    EXPECT_DOUBLE_EQ(p.latency_info_bits, expected);
  }
}

TEST(CodingPlanner, BestWithinLatencyRespectsBudget) {
  const CodingPlanner planner = CodingPlanner::paper_table();
  for (const double budget : {80.0, 150.0, 250.0, 500.0}) {
    const auto* best = planner.best_within_latency(budget);
    ASSERT_NE(best, nullptr) << budget;
    EXPECT_LE(best->latency_info_bits, budget);
    // Nothing within budget beats it.
    for (const auto& p : planner.points()) {
      if (p.latency_info_bits <= budget) {
        EXPECT_GE(p.required_ebn0_db, best->required_ebn0_db);
      }
    }
  }
}

TEST(CodingPlanner, NothingFitsTinyBudget) {
  const CodingPlanner planner = CodingPlanner::paper_table();
  EXPECT_EQ(planner.best_within_latency(10.0), nullptr);
}

TEST(CodingPlanner, LargerBudgetNeverWorse) {
  const CodingPlanner planner = CodingPlanner::paper_table();
  double prev = 1e9;
  for (const double budget : {80.0, 120.0, 200.0, 320.0, 480.0}) {
    const auto* best = planner.best_within_latency(budget);
    ASSERT_NE(best, nullptr);
    EXPECT_LE(best->required_ebn0_db, prev + 1e-12);
    prev = best->required_ebn0_db;
  }
}

TEST(CodingPlanner, WindowAdaptationForFixedCode) {
  // The decoder-side flexibility: for a deployed N = 40 code, relaxing
  // the latency budget buys a bigger window and a lower Eb/N0.
  const CodingPlanner planner = CodingPlanner::paper_table();
  const auto* tight = planner.best_window_for_lifting(40, 130.0);
  const auto* loose = planner.best_window_for_lifting(40, 320.0);
  ASSERT_NE(tight, nullptr);
  ASSERT_NE(loose, nullptr);
  EXPECT_LT(tight->window, loose->window);
  EXPECT_GT(tight->required_ebn0_db, loose->required_ebn0_db);
  EXPECT_EQ(planner.best_window_for_lifting(40, 50.0), nullptr);
}

TEST(CodingPlanner, PaperHeadlineLatencyGain) {
  // Paper: at Eb/N0 = 3 dB the CC needs 200 info bits where the BC
  // needs 400 — a 200-bit gain.
  const CodingPlanner planner = CodingPlanner::paper_table();
  EXPECT_NEAR(planner.latency_gain_vs_block_bits(3.0), 200.0, 40.0);
}

TEST(CodingPlanner, GainZeroWhenUnreachable) {
  const CodingPlanner planner = CodingPlanner::paper_table();
  EXPECT_DOUBLE_EQ(planner.latency_gain_vs_block_bits(0.5), 0.0);
}

TEST(CodingPlanner, RejectsEmptyTable) {
  EXPECT_THROW(CodingPlanner({}), std::invalid_argument);
}

TEST(CodingPlanner, CcDominatesBcAtEqualLatency) {
  // Fig. 10's message: at (roughly) every latency the CC curve sits
  // below the BC curve. Check at the BC latencies present in the table.
  const CodingPlanner planner = CodingPlanner::paper_table();
  for (const auto& bc : planner.points()) {
    if (!bc.block_code) continue;
    double best_cc = 1e9;
    for (const auto& cc : planner.points()) {
      if (cc.block_code) continue;
      if (cc.latency_info_bits <= bc.latency_info_bits) {
        best_cc = std::min(best_cc, cc.required_ebn0_db);
      }
    }
    if (best_cc < 1e9) {
      EXPECT_LE(best_cc, bc.required_ebn0_db + 1e-9)
          << "BC N=" << bc.lifting;
    }
  }
}

}  // namespace
}  // namespace wi::core

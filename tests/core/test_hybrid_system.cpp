#include "wi/core/hybrid_system.hpp"

#include <gtest/gtest.h>

namespace wi::core {
namespace {

TEST(HybridSystem, TopologySizes) {
  HybridSystemConfig config;
  config.boards = 4;
  config.mesh_k = 4;
  const HybridSystemModel model(config);
  const auto backplane = model.build_backplane_topology();
  const auto wireless = model.build_wireless_topology();
  EXPECT_EQ(backplane.module_count(), 64u);
  EXPECT_EQ(wireless.module_count(), 64u);
  // Backplane adds one bridge router per board.
  EXPECT_EQ(backplane.router_count(), 64u + 4u);
  EXPECT_EQ(wireless.router_count(), 64u);
}

TEST(HybridSystem, WirelessLinksAreVerticalAndCounted) {
  HybridSystemConfig config;
  config.boards = 3;
  config.mesh_k = 2;
  config.wireless_node_fraction = 1.0;
  const HybridSystemModel model(config);
  const auto topo = model.build_wireless_topology();
  std::size_t wireless_links = 0;
  for (const auto& link : topo.links()) {
    if (link.vertical) ++wireless_links;
  }
  // 4 positions x 2 gaps x 2 directions.
  EXPECT_EQ(wireless_links, 16u);
}

TEST(HybridSystem, NodeFractionScalesLinks) {
  HybridSystemConfig config;
  config.boards = 2;
  config.mesh_k = 4;
  config.wireless_node_fraction = 0.5;
  const HybridSystemModel model(config);
  const auto topo = model.build_wireless_topology();
  std::size_t wireless_links = 0;
  for (const auto& link : topo.links()) {
    if (link.vertical) ++wireless_links;
  }
  EXPECT_EQ(wireless_links, 16u);  // 8 positions x 1 gap x 2 dirs
}

TEST(HybridSystem, TrafficMixRespectsFractions) {
  HybridSystemConfig config;
  config.boards = 2;
  config.mesh_k = 2;
  config.inter_board_fraction = 0.25;
  const HybridSystemModel model(config);
  const auto traffic = model.build_traffic();
  // Source 0 (board 0): intra-board mass 0.75, inter 0.25.
  double intra = 0.0;
  double inter = 0.0;
  for (std::size_t d = 0; d < traffic.modules(); ++d) {
    if (d < 4) {
      intra += traffic.probability(0, d);
    } else {
      inter += traffic.probability(0, d);
    }
  }
  EXPECT_NEAR(intra, 0.75, 1e-9);
  EXPECT_NEAR(inter, 0.25, 1e-9);
}

TEST(HybridSystem, WirelessBeatsBackplaneOnInterBoardTraffic) {
  // The paper's proposal pays off when inter-board traffic matters.
  HybridSystemConfig config;
  config.boards = 4;
  config.mesh_k = 4;
  config.inter_board_fraction = 0.4;
  const HybridComparison cmp = HybridSystemModel(config).compare();
  EXPECT_GT(cmp.capacity_gain, 1.5);
  EXPECT_GE(cmp.wireless.saturation_rate, cmp.backplane.saturation_rate);
  // Direct links also shorten paths.
  EXPECT_LE(cmp.wireless.zero_load_latency_cycles,
            cmp.backplane.zero_load_latency_cycles);
}

TEST(HybridSystem, GainGrowsWithInterBoardFraction) {
  auto gain_at = [](double fraction) {
    HybridSystemConfig config;
    config.inter_board_fraction = fraction;
    return HybridSystemModel(config).compare().capacity_gain;
  };
  EXPECT_GT(gain_at(0.5), gain_at(0.1));
}

TEST(HybridSystem, FatterBackplaneClosesTheGap) {
  HybridSystemConfig thin;
  thin.backplane_bandwidth = 2.0;
  HybridSystemConfig fat;
  fat.backplane_bandwidth = 16.0;
  const double gain_thin = HybridSystemModel(thin).compare().capacity_gain;
  const double gain_fat = HybridSystemModel(fat).compare().capacity_gain;
  EXPECT_LT(gain_fat, gain_thin);
}

TEST(HybridSystem, RejectsBadConfig) {
  HybridSystemConfig config;
  config.boards = 1;
  EXPECT_THROW(HybridSystemModel{config}, std::invalid_argument);
  config = {};
  config.inter_board_fraction = 1.5;
  EXPECT_THROW(HybridSystemModel{config}, std::invalid_argument);
  config = {};
  config.wireless_node_fraction = -0.1;
  EXPECT_THROW(HybridSystemModel{config}, std::invalid_argument);
}

}  // namespace
}  // namespace wi::core

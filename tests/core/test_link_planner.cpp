#include "wi/core/link_planner.hpp"

#include <gtest/gtest.h>

namespace wi::core {
namespace {

TEST(LinkPlanner, MatchesLinkBudgetOnBoresight) {
  const WirelessLinkPlanner planner(rf::LinkBudgetParams{},
                                    Beamforming::kIdealSteering);
  const rf::LinkBudget budget;
  EXPECT_DOUBLE_EQ(planner.required_ptx_dbm(10.0, 100.0, 0.0),
                   budget.required_tx_power_dbm(10.0, 0.1, false));
}

TEST(LinkPlanner, ButlerChargesOnlySteeredLinks) {
  const WirelessLinkPlanner butler(rf::LinkBudgetParams{},
                                   Beamforming::kButlerMatrix);
  const WirelessLinkPlanner ideal(rf::LinkBudgetParams{},
                                  Beamforming::kIdealSteering);
  // Boresight: identical.
  EXPECT_DOUBLE_EQ(butler.required_ptx_dbm(10.0, 100.0, 0.0),
                   ideal.required_ptx_dbm(10.0, 100.0, 0.0));
  // Steered: the 5 dB Table I penalty.
  EXPECT_NEAR(butler.required_ptx_dbm(10.0, 300.0, 45.0) -
                  ideal.required_ptx_dbm(10.0, 300.0, 45.0),
              5.0, 1e-9);
}

TEST(LinkPlanner, SnrConsistentWithRequiredPower) {
  const WirelessLinkPlanner planner(rf::LinkBudgetParams{},
                                    Beamforming::kButlerMatrix);
  const double ptx = planner.required_ptx_dbm(18.0, 250.0, 30.0);
  EXPECT_NEAR(planner.snr_db(ptx, 250.0, 30.0), 18.0, 1e-9);
}

TEST(LinkPlanner, PlansAllAdjacentPairs) {
  const BoardGeometry geometry(2, 100.0, 100.0, 2);
  const WirelessLinkPlanner planner(rf::LinkBudgetParams{},
                                    Beamforming::kButlerMatrix);
  const auto links = planner.plan(geometry, 20.0, 15.0);
  EXPECT_EQ(links.size(), 16u);  // 4 x 4 ordered pairs
  for (const auto& link : links) {
    EXPECT_GE(link.distance_mm, 100.0);  // separation is the minimum
    EXPECT_GT(link.rate_gbps, 0.0);
  }
}

TEST(LinkPlanner, AheadLinkBeatsDiagonal) {
  const BoardGeometry geometry(2, 100.0, 100.0, 2);
  const WirelessLinkPlanner planner(rf::LinkBudgetParams{},
                                    Beamforming::kButlerMatrix);
  const auto links = planner.plan(geometry, 20.0, 15.0);
  const PlannedLink* ahead = nullptr;
  const PlannedLink* diagonal = nullptr;
  for (const auto& link : links) {
    if (ahead == nullptr || link.distance_mm < ahead->distance_mm) {
      ahead = &link;
    }
    if (diagonal == nullptr || link.distance_mm > diagonal->distance_mm) {
      diagonal = &link;
    }
  }
  ASSERT_NE(ahead, nullptr);
  ASSERT_NE(diagonal, nullptr);
  EXPECT_GT(ahead->snr_db, diagonal->snr_db);
  EXPECT_GT(ahead->rate_gbps, diagonal->rate_gbps);
  EXPECT_LT(ahead->required_ptx_dbm, diagonal->required_ptx_dbm);
  EXPECT_NEAR(ahead->steering_angle_deg, 0.0, 1e-9);
  EXPECT_GT(diagonal->steering_angle_deg, 30.0);
}

TEST(LinkPlanner, HundredGbitFeasibleAtModeratePower) {
  // The paper's target: 100 Gbit/s per link. With the Table I budget,
  // a Shannon-capacity link at ~20 dBm should exceed it on the ahead
  // link.
  const BoardGeometry geometry(2, 100.0, 100.0, 2);
  const WirelessLinkPlanner planner(rf::LinkBudgetParams{},
                                    Beamforming::kIdealSteering);
  const auto links = planner.plan(geometry, 20.0, 15.0);
  double best = 0.0;
  for (const auto& link : links) best = std::max(best, link.rate_gbps);
  EXPECT_GT(best, 100.0);
}

}  // namespace
}  // namespace wi::core

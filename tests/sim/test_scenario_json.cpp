#include "wi/sim/scenario_json.hpp"

#include <gtest/gtest.h>

#include "wi/sim/registry.hpp"
#include "wi/sim/workloads/ldpc_latency.hpp"
#include "wi/sim/workloads/nics_stack.hpp"

namespace wi::sim {
namespace {

TEST(ScenarioJson, RoundTripsEveryRegistryScenario) {
  const ScenarioRegistry& registry = ScenarioRegistry::paper();
  ASSERT_GE(registry.size(), 14u);
  for (const auto& name : registry.names()) {
    const ScenarioSpec& spec = registry.get(name);
    const std::string canonical = scenario_to_string(spec);
    const ScenarioSpec decoded = scenario_from_string(canonical);
    // Field-for-field equality via the canonical serialization (the
    // spec struct has no operator==; the codec covers every field).
    EXPECT_EQ(scenario_to_string(decoded), canonical) << name;
    EXPECT_TRUE(decoded.validate().is_ok()) << name;
  }
}

TEST(ScenarioJson, MissingKeysKeepDefaults) {
  const ScenarioSpec decoded = scenario_from_string(
      R"({"name": "sparse", "workload": "noc_latency",
          "noc": {"topology": {"kind": "mesh3d", "kz": 4}}})");
  EXPECT_EQ(decoded.name, "sparse");
  EXPECT_EQ(decoded.workload, "noc_latency");
  EXPECT_EQ(decoded.noc.topology.kind, TopologySpec::Kind::kMesh3d);
  EXPECT_EQ(decoded.noc.topology.kz, 4u);
  // Untouched fields carry the Table I defaults.
  const ScenarioSpec defaults;
  EXPECT_EQ(decoded.noc.topology.kx, defaults.noc.topology.kx);
  EXPECT_DOUBLE_EQ(decoded.link.budget.carrier_freq_hz,
                   defaults.link.budget.carrier_freq_hz);
  EXPECT_EQ(decoded.phy.receiver, defaults.phy.receiver);
}

TEST(ScenarioJson, UnknownKeysAreErrors) {
  EXPECT_THROW(
      (void)scenario_from_string(R"({"name": "x", "wrkload": "link_rate"})"),
      StatusError);
  EXPECT_THROW((void)scenario_from_string(
                   R"({"name": "x", "geometry": {"board": 3}})"),
               StatusError);
}

TEST(ScenarioJson, UnknownEnumNamesAreErrors) {
  EXPECT_THROW(
      (void)scenario_from_string(R"({"name": "x", "workload": "warp"})"),
      StatusError);
  EXPECT_THROW((void)scenario_from_string(
                   R"({"name": "x", "phy": {"receiver": "two_bit"}})"),
               StatusError);
}

TEST(ScenarioJson, NonIntegerCountsAreErrors) {
  EXPECT_THROW((void)scenario_from_string(
                   R"({"name": "x", "geometry": {"boards": 2.5}})"),
               StatusError);
  EXPECT_THROW(
      (void)scenario_from_string(
          R"({"name": "x", "workload": "pathloss_campaign",
              "pathloss": {"seed": -1}})"),
      StatusError);
}

TEST(ScenarioJson, EncodesEnumsAsStableNames) {
  ScenarioSpec spec;
  spec.name = "enums";
  spec.workload = "nics_stack";
  spec.payload<NicsSpec>().config.tech = core::VerticalLinkTech::kInductive;
  spec.noc.routing = RoutingKind::kShortestPath;
  spec.noc.traffic = TrafficKind::kHotspot;
  const Json json = scenario_to_json(spec);
  EXPECT_EQ(json.at("workload").as_string(), "nics_stack");
  EXPECT_EQ(json.at("nics").at("tech").as_string(), "inductive");
  EXPECT_EQ(json.at("noc").at("routing").as_string(), "shortest_path");
  EXPECT_EQ(json.at("noc").at("traffic").as_string(), "hotspot");
}

TEST(ScenarioJson, TrafficModeAndTornadoRoundTrip) {
  ScenarioSpec spec;
  spec.name = "implicit_tornado";
  spec.workload = "noc_latency";
  spec.noc.topology.kind = TopologySpec::Kind::kMesh2d;
  spec.noc.topology.kx = 8;
  spec.noc.topology.ky = 8;
  spec.noc.traffic = TrafficKind::kTornado;
  spec.noc.traffic_mode = TrafficMode::kImplicit;
  const Json json = scenario_to_json(spec);
  EXPECT_EQ(json.at("noc").at("traffic").as_string(), "tornado");
  EXPECT_EQ(json.at("noc").at("traffic_mode").as_string(), "implicit");
  const ScenarioSpec decoded =
      scenario_from_string(scenario_to_string(spec));
  EXPECT_EQ(decoded.noc.traffic, TrafficKind::kTornado);
  EXPECT_EQ(decoded.noc.traffic_mode, TrafficMode::kImplicit);
  EXPECT_TRUE(decoded.validate().is_ok());
  // Absent traffic_mode keeps the dense default (old spec files stay
  // valid and keep their meaning).
  const ScenarioSpec sparse = scenario_from_string(
      R"({"name": "sparse", "workload": "noc_latency"})");
  EXPECT_EQ(sparse.noc.traffic_mode, TrafficMode::kDense);
  EXPECT_THROW((void)scenario_from_string(
                   R"({"name": "x", "noc": {"traffic_mode": "sparse"}})"),
               StatusError);
}

TEST(ScenarioJson, LdpcCurvesRoundTrip) {
  ScenarioSpec spec;
  spec.name = "ldpc";
  spec.workload = "ldpc_latency";
  auto& ldpc = spec.payload<LdpcLatencySpec>();
  ldpc.cc_curves = {{25, 3, 8}, {80, 2, 4}};
  ldpc.bc_liftings = {64};
  const ScenarioSpec decoded =
      scenario_from_string(scenario_to_string(spec));
  const auto& decoded_ldpc = decoded.payload<LdpcLatencySpec>();
  ASSERT_EQ(decoded_ldpc.cc_curves.size(), 2u);
  EXPECT_EQ(decoded_ldpc.cc_curves[1].lifting, 80u);
  EXPECT_EQ(decoded_ldpc.cc_curves[1].window_hi, 4u);
  ASSERT_EQ(decoded_ldpc.bc_liftings.size(), 1u);
  EXPECT_EQ(decoded_ldpc.bc_liftings[0], 64u);
}

}  // namespace
}  // namespace wi::sim

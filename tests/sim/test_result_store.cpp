#include "wi/sim/result_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "wi/sim/registry.hpp"
#include "wi/sim/scenario_json.hpp"

namespace wi::sim {
namespace {

namespace fs = std::filesystem;

/// Unique scratch directory per test, removed on teardown.
class ResultStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("wi_result_store_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }

  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] ResultStore make_store(const std::string& version = "v1") {
    return ResultStore({dir_, version});
  }

  [[nodiscard]] static ScenarioSpec cheap_spec() {
    return ScenarioRegistry::paper().get("table1_link_budget");
  }

  fs::path dir_;
};

TEST_F(ResultStoreTest, RunResultJsonRoundTrips) {
  RunResult result;
  result.scenario = "x";
  result.status = Status(StatusCode::kUnreachableRoute, "no path 3 -> 7");
  result.notes = {"note one", "note, with comma"};
  result.table = Table({"a", "b"});
  result.table.add_row({"nan", "-inf"});
  const RunResult decoded =
      run_result_from_json(run_result_to_json(result));
  EXPECT_EQ(decoded.scenario, result.scenario);
  EXPECT_EQ(decoded.status, result.status);
  EXPECT_EQ(decoded.notes, result.notes);
  EXPECT_EQ(decoded.table, result.table);
}

TEST_F(ResultStoreTest, MissThenHit) {
  ResultStore store = make_store();
  SimEngine engine;
  const ScenarioSpec spec = cheap_spec();
  // Counting happens at load()/save() level, so this probe is a miss.
  EXPECT_FALSE(store.load(spec).has_value());
  EXPECT_EQ(store.misses(), 1u);

  const auto first = store.run_all(engine, {spec});
  ASSERT_EQ(first.size(), 1u);
  ASSERT_TRUE(first[0].ok());
  EXPECT_EQ(store.hits(), 0u);
  EXPECT_EQ(store.misses(), 2u);
  EXPECT_EQ(store.inserts(), 1u);

  const auto second = store.run_all(engine, {spec});
  EXPECT_EQ(store.hits(), 1u);
  EXPECT_EQ(store.misses(), 2u);
  EXPECT_EQ(store.inserts(), 1u);
  EXPECT_EQ(second[0].table, first[0].table);
  EXPECT_EQ(second[0].notes, first[0].notes);

  const ResultStoreStats stats = store.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.corrupt_entries, 0u);
}

TEST_F(ResultStoreTest, KeyDependsOnSpecSeedAndVersion) {
  ResultStore store = make_store();
  const ScenarioSpec spec = cheap_spec();
  ScenarioSpec changed = spec;
  changed.link.ptx_dbm += 1.0;
  EXPECT_NE(store.key(spec), store.key(changed));
  EXPECT_NE(store.key(spec, 0), store.key(spec, 1));
  ResultStore other = make_store("v2");
  EXPECT_NE(store.key(spec), other.key(spec));
}

TEST_F(ResultStoreTest, VersionChangeInvalidates) {
  SimEngine engine;
  const ScenarioSpec spec = cheap_spec();
  {
    ResultStore store = make_store("v1");
    (void)store.run_all(engine, {spec});
  }
  ResultStore upgraded = make_store("v2");
  EXPECT_FALSE(upgraded.load(spec).has_value());
}

TEST_F(ResultStoreTest, FailedResultsAreNotCached) {
  ResultStore store = make_store();
  SimEngine engine;
  ScenarioSpec broken = cheap_spec();
  broken.geometry.boards = 0;  // fails validation at run time
  const auto results = store.run_all(engine, {broken});
  EXPECT_FALSE(results[0].ok());
  EXPECT_FALSE(store.load(broken).has_value());
}

TEST_F(ResultStoreTest, GarbageEntriesAreMissesNotCrashes) {
  ResultStore store = make_store();
  SimEngine engine;
  const ScenarioSpec spec = cheap_spec();
  const auto path = store.entry_path(store.key(spec));

  const auto write_entry = [&](const std::string& payload) {
    std::ofstream out(path, std::ios::trunc);
    out << payload;
  };

  // Binary junk, empty file, wrong JSON shape: all must be misses.
  write_entry(std::string("\x00\xff\x7f garbage \x01", 12));
  EXPECT_NO_THROW(EXPECT_FALSE(store.load(spec).has_value()));
  write_entry("");
  EXPECT_NO_THROW(EXPECT_FALSE(store.load(spec).has_value()));
  write_entry("[1, 2, 3]");
  EXPECT_NO_THROW(EXPECT_FALSE(store.load(spec).has_value()));
  write_entry(R"({"format": 42})");
  EXPECT_NO_THROW(EXPECT_FALSE(store.load(spec).has_value()));

  // Structurally valid entry whose result table is corrupt. An empty
  // headers array makes the Table constructor throw std::invalid_argument
  // (not StatusError) — the regression this test pins down: load() must
  // treat it as a miss and recompute, not propagate the exception.
  const auto corrupt_entry = [&](Json table) {
    Json result = Json::object();
    result.set("scenario", Json(spec.name));
    Json status = Json::object();
    status.set("code", Json("ok"));
    status.set("message", Json(""));
    result.set("status", std::move(status));
    result.set("notes", Json::array());
    result.set("table", std::move(table));
    Json entry = Json::object();
    entry.set("format", Json("wi-result-v1"));
    entry.set("key", Json(store.key(spec)));
    entry.set("version", Json("v1"));
    entry.set("seed", Json(0.0));
    entry.set("spec", scenario_to_json(spec));
    entry.set("result", std::move(result));
    write_entry(entry.dump(2));
  };
  Json empty_headers = Json::object();
  empty_headers.set("headers", Json::array());
  empty_headers.set("rows", Json::array());
  corrupt_entry(std::move(empty_headers));
  EXPECT_NO_THROW(EXPECT_FALSE(store.load(spec).has_value()));

  Json ragged = Json::object();
  {
    Json headers = Json::array();
    headers.push_back(Json("a"));
    headers.push_back(Json("b"));
    ragged.set("headers", std::move(headers));
    Json rows = Json::array();
    Json short_row = Json::array();
    short_row.push_back(Json("only one cell"));
    rows.push_back(std::move(short_row));
    ragged.set("rows", std::move(rows));
  }
  corrupt_entry(std::move(ragged));
  EXPECT_NO_THROW(EXPECT_FALSE(store.load(spec).has_value()));

  // And a full run through the store recomputes and repairs the entry.
  const auto results = store.run_all(engine, {spec});
  ASSERT_TRUE(results[0].ok());
  EXPECT_TRUE(store.load(spec).has_value());
}

TEST_F(ResultStoreTest, CorruptEntryIsAMiss) {
  ResultStore store = make_store();
  SimEngine engine;
  const ScenarioSpec spec = cheap_spec();
  (void)store.run_all(engine, {spec});
  {
    std::ofstream out(store.entry_path(store.key(spec)), std::ios::trunc);
    out << "{ truncated";
  }
  EXPECT_FALSE(store.load(spec).has_value());
  // And the next cached run repairs the entry.
  (void)store.run_all(engine, {spec});
  EXPECT_TRUE(store.load(spec).has_value());
}

TEST_F(ResultStoreTest, CorruptEntryIsDiagnosedOncePerPath) {
  ResultStore store = make_store();
  SimEngine engine;
  const ScenarioSpec spec = cheap_spec();
  (void)store.run_all(engine, {spec});
  const auto path = store.entry_path(store.key(spec));
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{ truncated garbage";
  }
  ::testing::internal::CaptureStderr();
  EXPECT_FALSE(store.load(spec).has_value());
  EXPECT_FALSE(store.load(spec).has_value());
  EXPECT_FALSE(store.load(spec).has_value());
  const std::string log = ::testing::internal::GetCapturedStderr();

  // The miss surfaces, and the diagnostic names the offending file —
  // once, not per load.
  EXPECT_EQ(store.stats().corrupt_entries, 3u);
  const auto warnings = store.corruption_log();
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].code(), StatusCode::kParseError);
  EXPECT_NE(warnings[0].message().find(path.string()), std::string::npos);
  EXPECT_NE(log.find(path.string()), std::string::npos);
  EXPECT_EQ(log.find(path.string()),
            log.rfind(path.string()));  // exactly one stderr line

  // An unreadable-but-absent entry is NOT a corruption: plain misses
  // never pollute the log.
  ScenarioSpec other = cheap_spec();
  other.link.ptx_dbm += 3.0;
  EXPECT_FALSE(store.load(other).has_value());
  EXPECT_EQ(store.corruption_log().size(), 1u);
}

TEST_F(ResultStoreTest, CountersTrackResumePaths) {
  // Mirrors the sweep-resume scenario at counter level: 2 pre-seeded
  // entries + 2 fresh points = 2 hits, 2 misses, 2 inserts on resume.
  const ScenarioSpec base = cheap_spec();
  const SweepAxis axis{"ptx",
                       {0, 5, 10, 15},
                       [](ScenarioSpec& spec, double value) {
                         spec.link.ptx_dbm = value;
                       }};
  {
    ResultStore store = make_store();
    SimEngine engine;
    const auto grid = expand_grid(base, {axis});
    store.save(grid[1], engine.run(grid[1]));
    store.save(grid[3], engine.run(grid[3]));
    EXPECT_EQ(store.inserts(), 2u);
  }
  ResultStore store = make_store();
  SimEngine engine;
  const RunResult merged = store.run_sweep(engine, base, {axis});
  EXPECT_TRUE(merged.ok());
  const ResultStoreStats stats = store.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.inserts, 2u);
}

TEST_F(ResultStoreTest, SweepResumesPerRowAfterInterruption) {
  const ScenarioSpec base = cheap_spec();
  const SweepAxis axis{"ptx",
                       {0, 5, 10, 15},
                       [](ScenarioSpec& spec, double value) {
                         spec.link.ptx_dbm = value;
                       }};
  // "Interrupted" first attempt: only two grid points got persisted.
  {
    ResultStore store = make_store();
    SimEngine engine;
    const auto grid = expand_grid(base, {axis});
    ASSERT_EQ(grid.size(), 4u);
    store.save(grid[0], engine.run(grid[0]));
    store.save(grid[2], engine.run(grid[2]));
  }
  // Resume: the sweep only executes the two missing points.
  ResultStore store = make_store();
  SimEngine engine;
  const RunResult merged = store.run_sweep(engine, base, {axis});
  EXPECT_TRUE(merged.ok());
  EXPECT_EQ(store.hits(), 2u);
  EXPECT_EQ(store.misses(), 2u);
  EXPECT_EQ(merged.table.rows(), 4u * 9u);  // 9 budget rows per point
  // The merged result is identical to an uncached sweep.
  SimEngine fresh_engine;
  const RunResult uncached = fresh_engine.run_sweep(base, {axis});
  // Last note differs (store vs phy-cache stats); compare tables.
  EXPECT_EQ(merged.table, uncached.table);
}

TEST_F(ResultStoreTest, SecondSweepRunIsAllHits) {
  const ScenarioSpec base = cheap_spec();
  const SweepAxis axis{"ptx",
                       {0, 5, 10},
                       [](ScenarioSpec& spec, double value) {
                         spec.link.ptx_dbm = value;
                       }};
  ResultStore store = make_store();
  SimEngine engine;
  const RunResult first = store.run_sweep(engine, base, {axis});
  EXPECT_EQ(store.misses(), 3u);
  const RunResult second = store.run_sweep(engine, base, {axis});
  EXPECT_EQ(store.hits(), 3u);
  EXPECT_EQ(store.misses(), 3u);
  EXPECT_EQ(second.table, first.table);
}

}  // namespace
}  // namespace wi::sim

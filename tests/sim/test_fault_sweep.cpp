/// fault_sweep workload tests: registry scenarios validate, the
/// baseline (zero-rate) row shows no degradation, heavier rates kill
/// entities, the payload survives the JSON codec, runs are
/// deterministic, and a campaign over the sweep is bit-identical at 1
/// and 4 threads — the property the committed statistical golden
/// assumes.

#include "wi/sim/workloads/fault_sweep.hpp"

#include <gtest/gtest.h>

#include <string>

#include "wi/sim/campaign.hpp"
#include "wi/sim/engine.hpp"
#include "wi/sim/registry.hpp"
#include "wi/sim/scenario_json.hpp"
#include "wi/sim/workload.hpp"

namespace wi::sim {
namespace {

/// Small, fast sweep: 4x4 mesh, short windows, two rates (clean
/// baseline + heavy failures).
[[nodiscard]] ScenarioSpec small_sweep() {
  ScenarioSpec spec;
  spec.name = "fault_sweep_test";
  spec.workload = "fault_sweep";
  spec.noc.topology.kind = TopologySpec::Kind::kMesh2d;
  spec.noc.topology.kx = 4;
  spec.noc.topology.ky = 4;
  auto& sweep = spec.payload<FaultSweepSpec>();
  sweep.fail_rates = {0.0, 0.3};
  sweep.warmup_cycles = 100;
  sweep.measure_cycles = 400;
  sweep.drain_cycles = 1000;
  return spec;
}

TEST(FaultSweep, RegistryScenariosExistAndValidate) {
  const auto& registry = ScenarioRegistry::paper();
  for (const std::string name :
       {"fault_sweep_mesh2d_8x8", "fault_sweep_star_mesh_4x4c4",
        "campaign_fault_mesh2d_8x8"}) {
    ASSERT_TRUE(registry.contains(name)) << name;
    const ScenarioSpec spec = registry.get(name);
    EXPECT_EQ(spec.workload, "fault_sweep") << name;
    EXPECT_TRUE(spec.validate().is_ok()) << name;
  }
}

TEST(FaultSweep, ValidationCatchesBadRatesAndWindows) {
  ScenarioSpec spec = small_sweep();
  spec.payload<FaultSweepSpec>().fail_rates = {0.5, 1.5};
  EXPECT_EQ(spec.validate().code(), StatusCode::kInvalidSpec);
  spec = small_sweep();
  spec.payload<FaultSweepSpec>().injection_rate = 1.0;
  EXPECT_EQ(spec.validate().code(), StatusCode::kInvalidSpec);
  spec = small_sweep();
  spec.payload<FaultSweepSpec>().fault.window_begin = 0.9;
  spec.payload<FaultSweepSpec>().fault.window_end = 0.1;
  EXPECT_EQ(spec.validate().code(), StatusCode::kInvalidSpec);
}

TEST(FaultSweep, PayloadSurvivesTheJsonCodec) {
  ScenarioSpec spec = small_sweep();
  auto& sweep = spec.payload<FaultSweepSpec>();
  sweep.router_fail_fraction = 0.5;
  sweep.fault.seed = 99;
  sweep.fault.window_begin = 0.1;
  sweep.fault.window_end = 0.4;
  const std::string text = scenario_to_string(spec);
  const ScenarioSpec decoded = scenario_from_string(text);
  const auto& round = decoded.payload<FaultSweepSpec>();
  EXPECT_EQ(round.fail_rates, sweep.fail_rates);
  EXPECT_DOUBLE_EQ(round.router_fail_fraction, 0.5);
  EXPECT_EQ(round.fault.seed, 99u);
  EXPECT_DOUBLE_EQ(round.fault.window_begin, 0.1);
  EXPECT_DOUBLE_EQ(round.fault.window_end, 0.4);
  // Canonical text is a fixed point — the store key is stable.
  EXPECT_EQ(scenario_to_string(decoded), text);
}

TEST(FaultSweep, BaselineRowIsCleanAndHeavyRowDegrades) {
  SimEngine engine;
  const RunResult result = engine.run(small_sweep());
  ASSERT_TRUE(result.ok()) << result.status.to_string();
  const Table& table = result.table;
  ASSERT_EQ(table.headers(), workload_headers("fault_sweep"));
  ASSERT_EQ(table.rows(), 2u);

  // Row 0: zero failure rate — nothing dies, nothing degrades; the
  // sweep's own baseline run and the zero-rate row must agree exactly.
  EXPECT_EQ(table.cell(0, 1), "0");  // dead_links
  EXPECT_EQ(table.cell(0, 2), "0");  // dead_routers
  EXPECT_EQ(std::stod(table.cell(0, 8)), 0.0) << "thr_degraded";
  EXPECT_EQ(table.cell(0, 9), "ok");

  // Row 1: a 30% link rate on a 4x4 mesh kills entities with near
  // certainty and throughput drops (or at minimum cannot improve).
  EXPECT_GT(std::stoll(table.cell(1, 1)) + std::stoll(table.cell(1, 2)),
            0);
  EXPECT_GE(std::stod(table.cell(1, 8)), 0.0);
}

TEST(FaultSweep, RunsAreDeterministic) {
  SimEngine engine;
  const RunResult first = engine.run(small_sweep());
  const RunResult second = engine.run(small_sweep());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.table, second.table);
  EXPECT_EQ(first.notes, second.notes);
}

TEST(FaultSweep, ApplySeedReseedsTrafficAndFaultsTogether) {
  const ScenarioSpec replica = scenario_for_seed(small_sweep(), 31);
  const auto& sweep = replica.payload<FaultSweepSpec>();
  EXPECT_EQ(sweep.seed, 31u);
  EXPECT_EQ(sweep.fault.seed, 31u);
}

TEST(FaultSweep, CampaignIsBitIdenticalAcrossThreadCounts) {
  CampaignSpec campaign;
  campaign.name = "fault_sweep_threads";
  campaign.seeds = 3;
  campaign.base_seed = 5;
  campaign.scenario = small_sweep();

  SimEngine engine;
  const Campaign runner(campaign);
  const CampaignResult serial = runner.run(engine, nullptr, 1);
  const CampaignResult parallel = runner.run(engine, nullptr, 4);
  ASSERT_TRUE(serial.ok()) << serial.status.to_string();
  ASSERT_TRUE(parallel.ok()) << parallel.status.to_string();

  EXPECT_EQ(serial.aggregate, parallel.aggregate)
      << "the aggregate must not depend on the thread count";
  ASSERT_EQ(serial.per_seed.size(), parallel.per_seed.size());
  for (std::size_t i = 0; i < serial.per_seed.size(); ++i) {
    EXPECT_EQ(serial.per_seed[i].table, parallel.per_seed[i].table)
        << "replica " << i;
  }
}

}  // namespace
}  // namespace wi::sim

/// Tests of the open workload-plugin layer: registry completeness over
/// the paper scenarios, workload-name round-tripping through the JSON
/// codec, payload-key diagnostics, and the registry's duplicate /
/// unknown-name error behavior.

#include "wi/sim/workload.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "wi/sim/registry.hpp"
#include "wi/sim/scenario_json.hpp"
#include "wi/sim/workloads/flit_sim.hpp"
#include "wi/sim/workloads/tx_power_sweep.hpp"

namespace wi::sim {
namespace {

TEST(WorkloadRegistry, EveryPaperScenarioResolvesToARegisteredRunner) {
  const WorkloadRegistry& workloads = WorkloadRegistry::global();
  const ScenarioRegistry& scenarios = ScenarioRegistry::paper();
  for (const auto& name : scenarios.names()) {
    const ScenarioSpec& spec = scenarios.get(name);
    const WorkloadRunner* runner = workloads.find(spec.workload);
    ASSERT_NE(runner, nullptr) << name << " -> " << spec.workload;
    EXPECT_EQ(runner->name(), spec.workload);
    EXPECT_FALSE(runner->headers().empty()) << spec.workload;
    EXPECT_EQ(workload_headers(spec.workload), runner->headers());
  }
}

TEST(WorkloadRegistry, EveryRunnerNameRoundTripsThroughTheCodec) {
  for (const auto& name : WorkloadRegistry::global().names()) {
    ScenarioSpec spec;
    spec.name = "roundtrip_" + name;
    spec.workload = name;
    const ScenarioSpec decoded =
        scenario_from_string(scenario_to_string(spec));
    EXPECT_EQ(decoded.workload, name);
    // The canonical serialization is the identity that matters (the
    // result store hashes it).
    EXPECT_EQ(scenario_to_string(decoded), scenario_to_string(spec))
        << name;
  }
}

TEST(WorkloadRegistry, ContainsTheBuiltinAndPluginWorkloads) {
  const WorkloadRegistry& registry = WorkloadRegistry::global();
  EXPECT_GE(registry.size(), 18u);
  for (const char* name :
       {"link_budget_table", "pathloss_campaign", "tx_power_sweep",
        "link_rate", "link_plan", "noc_latency", "nics_stack",
        "hybrid_system", "coding_plan", "impulse_response", "isi_filters",
        "info_rates", "adc_energy", "threshold_saturation", "ldpc_latency",
        "flit_sim", "noc_saturation", "link_margin_map"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
}

TEST(ScenarioJson, PayloadKeyOfAnotherWorkloadIsDiagnosed) {
  // "flit" is flit_sim's payload section; attaching it to an
  // info_rates scenario must name the owning workload, not just report
  // an unknown key.
  try {
    (void)scenario_from_string(
        R"({"name": "x", "workload": "info_rates",
            "flit": {"seed": 1}})");
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kParseError);
    EXPECT_NE(e.status().message().find("flit_sim"), std::string::npos)
        << e.status().message();
    EXPECT_NE(e.status().message().find("info_rates"), std::string::npos);
  }
}

TEST(ScenarioJson, UnknownWorkloadNameSuggestsTheNearestMatch) {
  try {
    (void)scenario_from_string(
        R"({"name": "x", "workload": "info_rate"})");
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kParseError);
    EXPECT_NE(e.status().message().find("did you mean 'info_rates'"),
              std::string::npos)
        << e.status().message();
  }
}

class DummyRunner final : public WorkloadRunner {
 public:
  explicit DummyRunner(std::string name, std::string key = {})
      : name_(std::move(name)),
        key_(key.empty() ? name_ : std::move(key)) {}
  std::string name() const override { return name_; }
  std::string payload_key() const override { return key_; }
  std::vector<std::string> headers() const override { return {"x"}; }
  Table run(const ScenarioSpec&, WorkloadEnv&) const override {
    return Table(headers());
  }

 private:
  std::string name_;
  std::string key_;
};

TEST(WorkloadRegistry, RejectsDuplicateRegistration) {
  WorkloadRegistry registry;
  registry.register_runner(std::make_unique<DummyRunner>("dummy"));
  try {
    registry.register_runner(std::make_unique<DummyRunner>("dummy"));
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kInvalidSpec);
    EXPECT_NE(e.status().message().find("duplicate"), std::string::npos);
  }
  // A different name reusing an existing payload key is just as wrong:
  // the codec could no longer dispatch the section unambiguously.
  EXPECT_THROW(registry.register_runner(
                   std::make_unique<DummyRunner>("dummy2", "dummy")),
               StatusError);
  // Unnamed runners never enter the registry.
  EXPECT_THROW(registry.register_runner(std::make_unique<DummyRunner>("")),
               StatusError);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(WorkloadRegistry, UnknownNameThrowsWithSuggestionAndKnownList) {
  try {
    (void)WorkloadRegistry::global().get("flit_sims");
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kInvalidSpec);
    EXPECT_NE(e.status().message().find("did you mean 'flit_sim'"),
              std::string::npos)
        << e.status().message();
    EXPECT_NE(e.status().message().find("noc_latency"), std::string::npos);
  }
  EXPECT_EQ(workload_headers("no_such_workload"),
            std::vector<std::string>{"-"});
}

TEST(ClosestName, SuggestsOnlyPlausibleTypos) {
  const std::vector<std::string> known = {"info_rates", "flit_sim",
                                          "noc_latency"};
  EXPECT_EQ(closest_name("info_rate", known), "info_rates");
  EXPECT_EQ(closest_name("flit_simm", known), "flit_sim");
  EXPECT_EQ(closest_name("completely_different", known), "");
}

TEST(ScenarioSpec, PayloadAccessorsCreateReadAndMismatch) {
  ScenarioSpec spec;
  spec.name = "payloads";
  spec.workload = "tx_power_sweep";
  // Const access without a payload sees the defaults...
  const ScenarioSpec& view = spec;
  EXPECT_FALSE(spec.has_payload());
  // ...mutable access materialises one.
  (void)view;
  spec.payload<TxPowerSpec>().snr_hi_db = 12.0;
  EXPECT_TRUE(spec.has_payload());
  EXPECT_DOUBLE_EQ(view.payload<TxPowerSpec>().snr_hi_db, 12.0);
  // Reading it as another payload type is a workload/payload mismatch.
  EXPECT_THROW((void)view.payload<FlitSimSpec>(), StatusError);
}

}  // namespace
}  // namespace wi::sim

/// \file test_campaign_shard.cpp
/// \brief Distributed campaigns: shard workers + incremental merge.
///
/// The contract under test: shards 0..N-1 of a campaign cover the seed
/// schedule exactly once (seed values are shard-invariant), any number
/// of workers persisting through one shared ResultStore directory can
/// be folded back by merge_campaign_results(), and the merged
/// aggregate is BIT-IDENTICAL to the single-process Campaign::run
/// aggregate — cell strings compared with Table::operator==, not
/// tolerances. Degraded inputs (missing shards, corrupt entries,
/// shape-mismatched tables) must produce partial aggregates and a
/// missing-seeds report, never abort the aggregator.

#include "wi/sim/campaign.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "wi/sim/result_store.hpp"
#include "wi/sim/workloads/flit_sim.hpp"

namespace wi::sim {
namespace {

namespace fs = std::filesystem;

class CampaignShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("wi_campaign_shard_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }

  void TearDown() override { fs::remove_all(dir_); }

  /// Small stochastic campaign: flit DES on a 3x3 mesh, 3 injection
  /// rates, short windows — cheap enough for a 12-seed suite.
  [[nodiscard]] static CampaignSpec small_campaign(std::size_t seeds) {
    ScenarioSpec spec;
    spec.name = "shard_flit_3x3";
    spec.workload = "flit_sim";
    spec.noc.topology.kind = TopologySpec::Kind::kMesh2d;
    spec.noc.topology.kx = 3;
    spec.noc.topology.ky = 3;
    auto& flit = spec.payload<FlitSimSpec>();
    flit.warmup_cycles = 100;
    flit.measure_cycles = 400;
    flit.injection_rates = {0.05, 0.1, 0.15};
    CampaignSpec campaign;
    campaign.seeds = seeds;
    campaign.base_seed = 7;
    campaign.scenario = spec;
    return campaign;
  }

  fs::path dir_;
};

TEST(CampaignShard, ValidatesIndexAgainstCount) {
  EXPECT_TRUE(CampaignShard{}.validate().is_ok());
  EXPECT_TRUE((CampaignShard{0, 1}).validate().is_ok());
  EXPECT_TRUE((CampaignShard{3, 4}).validate().is_ok());
  EXPECT_FALSE((CampaignShard{4, 4}).validate().is_ok());
  EXPECT_FALSE((CampaignShard{0, 0}).validate().is_ok());
}

TEST(CampaignShard, ShardsPartitionTheSeedScheduleExactlyOnce) {
  // Every seed index is owned by exactly one shard, for several shard
  // counts including one that does not divide the seed count.
  constexpr std::size_t kSeeds = 100;
  for (const std::size_t count : {1u, 2u, 3u, 8u}) {
    for (std::size_t k = 0; k < kSeeds; ++k) {
      std::size_t owners = 0;
      for (std::size_t i = 0; i < count; ++i) {
        if (CampaignShard{i, count}.owns(k)) ++owners;
      }
      EXPECT_EQ(owners, 1u) << "seed " << k << " with " << count
                            << " shards";
    }
  }
}

TEST_F(CampaignShardTest, ShardedWorkersMergeBitIdenticalToSingleProcess) {
  const CampaignSpec spec = small_campaign(12);
  SimEngine engine({2});

  // Reference: the classic single-process campaign (no store).
  const CampaignResult reference =
      Campaign(spec).run(engine, nullptr, 2);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(reference.complete());

  // 3 shard workers, each its own ResultStore instance on the shared
  // directory (process model), run in arbitrary order.
  std::set<std::string> shard_scenarios;
  for (const std::size_t i : {2u, 0u, 1u}) {
    ResultStore store({dir_, "v1"});
    const CampaignResult shard =
        Campaign(spec).run(engine, &store, 2, CampaignShard{i, 3});
    ASSERT_TRUE(shard.ok()) << shard.status.to_string();
    EXPECT_EQ(shard.per_seed.size(), 4u);  // 12 seeds / 3 shards
    for (const RunResult& replica : shard.per_seed) {
      // No replica may be computed by two shards.
      EXPECT_TRUE(shard_scenarios.insert(replica.scenario).second)
          << "replica " << replica.scenario << " ran twice";
    }
  }
  EXPECT_EQ(shard_scenarios.size(), 12u);

  // The aggregator folds the union back together, bit-for-bit.
  ResultStore store({dir_, "v1"});
  const CampaignResult merged = merge_campaign_results(spec, store);
  ASSERT_TRUE(merged.ok()) << merged.status.to_string();
  EXPECT_TRUE(merged.complete());
  EXPECT_EQ(merged.aggregate, reference.aggregate);
}

TEST_F(CampaignShardTest, MergeReportsMissingSeedsAndStaysPartial) {
  const CampaignSpec spec = small_campaign(9);
  SimEngine engine({2});

  // Only shard 0 of 3 ever ran: seeds 0, 3, 6 are in the store.
  {
    ResultStore store({dir_, "v1"});
    const CampaignResult shard =
        Campaign(spec).run(engine, &store, 2, CampaignShard{0, 3});
    ASSERT_TRUE(shard.ok());
  }

  ResultStore store({dir_, "v1"});
  const CampaignResult merged = merge_campaign_results(spec, store);
  ASSERT_TRUE(merged.ok());
  EXPECT_FALSE(merged.complete());
  EXPECT_EQ(merged.missing_seeds,
            (std::vector<std::size_t>{1, 2, 4, 5, 7, 8}));
  // The partial aggregate covers exactly the 3 present seeds.
  ASSERT_GT(merged.aggregate.rows(), 0u);
  const auto headers = campaign_headers();
  const std::size_t seeds_col = 3;  // "seeds"
  ASSERT_EQ(headers[seeds_col], "seeds");
  for (std::size_t r = 0; r < merged.aggregate.rows(); ++r) {
    EXPECT_EQ(merged.aggregate.cell(r, seeds_col), "3");
  }
}

TEST_F(CampaignShardTest, MergeDegradesCorruptEntriesToMissing) {
  const CampaignSpec spec = small_campaign(6);
  SimEngine engine({2});
  {
    ResultStore store({dir_, "v1"});
    const CampaignResult all = Campaign(spec).run(engine, &store, 2);
    ASSERT_TRUE(all.ok());
  }

  // Vandalize seed index 2's entry: a crashed worker's torn write
  // that somehow survived under the final name.
  {
    ResultStore store({dir_, "v1"});
    const ScenarioSpec replica = scenario_for_seed(
        spec.scenario, campaign_seed(spec.base_seed, 2));
    std::ofstream out(store.entry_path(store.key(replica)),
                      std::ios::trunc);
    out << "{\"format\": \"wi-result-v1\", \"key";  // truncated JSON
  }

  ResultStore store({dir_, "v1"});
  const CampaignResult merged = merge_campaign_results(spec, store);
  ASSERT_TRUE(merged.ok()) << "corrupt entries must never abort";
  EXPECT_EQ(merged.missing_seeds, (std::vector<std::size_t>{2}));
  EXPECT_EQ(store.stats().corrupt_entries, 1u);
}

TEST_F(CampaignShardTest, MergeDegradesShapeMismatchedEntriesToMissing) {
  const CampaignSpec spec = small_campaign(4);
  SimEngine engine({2});
  {
    ResultStore store({dir_, "v1"});
    const CampaignResult all = Campaign(spec).run(engine, &store, 2);
    ASSERT_TRUE(all.ok());
  }

  // Replace seed index 1's entry with a decodable result whose table
  // has the wrong shape (as a bad or version-skewed writer would
  // leave): the aggregator must skip it, not throw.
  {
    ResultStore store({dir_, "v1"});
    const ScenarioSpec replica = scenario_for_seed(
        spec.scenario, campaign_seed(spec.base_seed, 1));
    RunResult rogue;
    rogue.scenario = replica.name;
    rogue.table = Table({"unexpected"});
    rogue.table.add_row({"1"});
    store.save(replica, rogue);
  }

  ResultStore store({dir_, "v1"});
  const CampaignResult merged = merge_campaign_results(spec, store);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.missing_seeds, (std::vector<std::size_t>{1}));
  bool noted = false;
  for (const std::string& note : merged.notes) {
    if (note.find("seed index 1 unusable") != std::string::npos) {
      noted = true;
    }
  }
  EXPECT_TRUE(noted);
}

TEST_F(CampaignShardTest, WorkerRecomputesCorruptEntriesInsteadOfAborting) {
  // The worker half of the degraded path: a corrupt per-seed entry
  // (left by a crashed peer) must be recomputed on the next campaign
  // run — never abort it, never lose the seed.
  const CampaignSpec spec = small_campaign(4);
  SimEngine engine({2});
  Table reference;
  {
    ResultStore store({dir_, "v1"});
    const CampaignResult all = Campaign(spec).run(engine, &store, 2);
    ASSERT_TRUE(all.ok());
    reference = all.aggregate;
  }
  {
    ResultStore store({dir_, "v1"});
    const ScenarioSpec replica = scenario_for_seed(
        spec.scenario, campaign_seed(spec.base_seed, 3));
    std::ofstream out(store.entry_path(store.key(replica)),
                      std::ios::trunc);
    out << "not json at all";
  }
  ResultStore store({dir_, "v1"});
  const CampaignResult rerun = Campaign(spec).run(engine, &store, 2);
  ASSERT_TRUE(rerun.ok()) << rerun.status.to_string();
  EXPECT_EQ(rerun.aggregate, reference);
  EXPECT_EQ(store.stats().corrupt_entries, 1u);
  EXPECT_EQ(store.hits(), 3u);    // the intact seeds replayed
  EXPECT_EQ(store.misses(), 1u);  // the vandalized one recomputed
}

TEST_F(CampaignShardTest, MergedAggregateMatchesStoreFreeRunAfterResume) {
  // Extending a sharded campaign: workers ran 8 seeds as 2 shards;
  // later the campaign is extended to 12 seeds and two more shard
  // workers fill the gap. The final merge still equals the
  // single-process 12-seed aggregate bit-for-bit.
  const CampaignSpec eight = small_campaign(8);
  CampaignSpec twelve = eight;
  twelve.seeds = 12;
  SimEngine engine({2});

  for (const std::size_t i : {0u, 1u}) {
    ResultStore store({dir_, "v1"});
    ASSERT_TRUE(Campaign(eight)
                    .run(engine, &store, 2, CampaignShard{i, 2})
                    .ok());
  }
  for (const std::size_t i : {0u, 1u}) {
    ResultStore store({dir_, "v1"});
    // The extension re-hits seeds 0..7 from the store and computes
    // only the new tail.
    ASSERT_TRUE(Campaign(twelve)
                    .run(engine, &store, 2, CampaignShard{i, 2})
                    .ok());
  }

  ResultStore store({dir_, "v1"});
  const CampaignResult merged = merge_campaign_results(twelve, store);
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(merged.complete());
  const CampaignResult reference =
      Campaign(twelve).run(engine, nullptr, 2);
  EXPECT_EQ(merged.aggregate, reference.aggregate);
}

}  // namespace
}  // namespace wi::sim

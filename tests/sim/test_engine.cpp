#include "wi/sim/engine.hpp"

#include <gtest/gtest.h>

#include <string>

#include "wi/sim/registry.hpp"
#include "wi/sim/workloads/hybrid_system.hpp"

namespace wi::sim {
namespace {

TEST(Registry, PaperScenariosAreComplete) {
  const auto& registry = ScenarioRegistry::paper();
  EXPECT_GE(registry.size(), 10u);
  for (const std::string name :
       {"table1_link_budget", "fig01_pathloss", "fig04_tx_power",
        "quickstart_link_rate", "board_links_plan", "fig08a_mesh2d_8x8",
        "fig08a_star_mesh_4x4c4", "fig08a_mesh3d_4x4x4",
        "fig08b_mesh2d_32x16", "fig08b_mesh3d_8x8x8",
        "ablation_star_mesh_irl", "ablation_vertical_links",
        "ablation_hybrid_system", "fig10_coding_plan"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_TRUE(registry.get(name).validate().is_ok()) << name;
  }
}

TEST(Registry, UnknownNameThrowsWithListing) {
  try {
    (void)ScenarioRegistry::paper().get("no_such_scenario");
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kInvalidSpec);
    EXPECT_NE(e.status().message().find("fig04_tx_power"),
              std::string::npos);
  }
}

TEST(Registry, RejectsDuplicatesAndInvalid) {
  ScenarioRegistry registry;
  ScenarioSpec spec;
  spec.name = "a";
  registry.add(spec);
  EXPECT_THROW(registry.add(spec), StatusError);
  ScenarioSpec bad;
  bad.name = "";
  EXPECT_THROW(registry.add(bad), StatusError);
}

TEST(SimEngine, TxPowerSweepSchemaAndAnchors) {
  SimEngine engine;
  const RunResult result =
      engine.run(ScenarioRegistry::paper().get("fig04_tx_power"));
  ASSERT_TRUE(result.ok()) << result.status.to_string();
  EXPECT_EQ(result.table.headers(), workload_headers("tx_power_sweep"));
  ASSERT_EQ(result.table.rows(), 8u);  // SNR 0..35 step 5
  // Longest-link curves differ by the 5 dB Butler penalty.
  const double longest = std::stod(result.table.cell(0, 2));
  const double butler = std::stod(result.table.cell(0, 3));
  EXPECT_NEAR(butler - longest, 5.0, 1e-9);
}

TEST(SimEngine, LinkBudgetTableMatchesTableI) {
  SimEngine engine;
  const RunResult result =
      engine.run(ScenarioRegistry::paper().get("table1_link_budget"));
  ASSERT_TRUE(result.ok());
  // Pathloss anchors PL(0.1 m) = 59.8 dB, PL(0.3 m) = 69.3 dB.
  EXPECT_NEAR(std::stod(result.table.cell(2, 2)), 59.8, 0.1);
  EXPECT_NEAR(std::stod(result.table.cell(3, 2)), 69.3, 0.1);
}

TEST(SimEngine, InvalidSpecIsReportedNotThrown) {
  SimEngine engine;
  ScenarioSpec spec;
  spec.name = "bad";
  spec.phy.polarizations = 0;
  const RunResult result = engine.run(spec);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidSpec);
  EXPECT_EQ(result.table.rows(), 0u);
}

TEST(SimEngine, UnreachableRouteSurfacesAsStatus) {
  // Dimension-order routing cannot serve a 3D mesh whose vertical links
  // exist only on every second column: the route() call throws a
  // structured StatusError which the engine converts into the result.
  SimEngine engine;
  ScenarioSpec spec;
  spec.name = "partial_vertical_dor";
  spec.workload = "noc_latency";
  spec.noc.topology.kind = TopologySpec::Kind::kPartialVertical3d;
  spec.noc.topology.kx = 4;
  spec.noc.topology.ky = 4;
  spec.noc.topology.kz = 4;
  spec.noc.topology.tsv_period = 2;
  spec.noc.routing = RoutingKind::kDimensionOrder;
  const RunResult result = engine.run(spec);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kUnreachableRoute);

  // The same topology is routable with BFS shortest-path.
  spec.noc.routing = RoutingKind::kShortestPath;
  const RunResult routed = engine.run(spec);
  EXPECT_TRUE(routed.ok()) << routed.status.to_string();
  EXPECT_GT(routed.table.rows(), 0u);
}

TEST(SimEngine, SweepSurvivesBadGridPoints) {
  // One axis value produces an unroutable topology; the sweep must
  // still complete and surface that point as an error row.
  SimEngine engine;
  ScenarioSpec base;
  base.name = "sweep";
  base.workload = "noc_latency";
  base.noc.topology.kind = TopologySpec::Kind::kPartialVertical3d;
  base.noc.topology.kx = 2;
  base.noc.topology.ky = 2;
  base.noc.topology.kz = 2;
  base.noc.injection_rates = {0.05};
  const SweepAxis axis{"period",
                       {1.0, 2.0},
                       [](ScenarioSpec& spec, double value) {
                         spec.noc.topology.tsv_period =
                             static_cast<std::size_t>(value);
                       }};
  const RunResult merged = engine.run_sweep(base, {axis});
  ASSERT_EQ(merged.table.rows(), 2u);
  // Partial failure marks the aggregate status failed (exit codes), but
  // every point's row is present.
  EXPECT_FALSE(merged.ok());
  EXPECT_NE(merged.status.message().find("1 of 2"), std::string::npos);
  EXPECT_EQ(merged.table.cell(0, 1), "ok");
  EXPECT_NE(merged.table.cell(1, 1).find("unreachable_route"),
            std::string::npos);
  // Failed point fills its data cells with '-'.
  EXPECT_EQ(merged.table.cell(1, 2), "-");
}

TEST(SimEngine, RunAllPreservesInputOrder) {
  const auto& registry = ScenarioRegistry::paper();
  SimEngine engine;
  const auto results = engine.run_all({
      registry.get("fig04_tx_power"),
      registry.get("table1_link_budget"),
  });
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].scenario, "fig04_tx_power");
  EXPECT_EQ(results[1].scenario, "table1_link_budget");
}

TEST(SimEngine, HybridComparisonFavoursWirelessAtHighInterTraffic) {
  SimEngine engine;
  ScenarioSpec spec = ScenarioRegistry::paper().get("ablation_hybrid_system");
  spec.payload<HybridSpec>().config.inter_board_fraction = 0.5;
  const RunResult result = engine.run(spec);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.table.rows(), 1u);
  // capacity_gain column: wireless beats the backplane spine.
  EXPECT_GT(std::stod(result.table.cell(0, 4)), 1.0);
}

}  // namespace
}  // namespace wi::sim

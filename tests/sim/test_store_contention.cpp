/// \file test_store_contention.cpp
/// \brief Multi-writer ResultStore safety: the shard-worker contract.
///
/// `wi_run --shard` points N independent *processes* at one store
/// directory. These tests model that with N threads each owning its
/// own ResultStore instance (separate io mutexes, exactly like
/// separate processes) on one scratch directory, and pin the two
/// concurrency fixes the distributed-campaign mode depends on:
/// per-writer-unique temp names (no clobbered staging files, no
/// half-written bodies renamed into place) and the age-gated orphan
/// sweep (a new worker must not delete a peer's in-flight write).
/// Mid-write crashes are injected deterministically via the wi::fault
/// derivation hooks: a "killed" writer leaves a truncated temp file
/// behind instead of completing its save, exactly the residue of a
/// real kill -9 between write and rename.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "wi/common/fault.hpp"
#include "wi/sim/registry.hpp"
#include "wi/sim/result_store.hpp"

namespace wi::sim {
namespace {

namespace fs = std::filesystem;

class StoreContentionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("wi_store_contention_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }

  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] static ScenarioSpec spec_named(const std::string& name) {
    ScenarioSpec spec = ScenarioRegistry::paper().get("table1_link_budget");
    spec.name = name;  // the name feeds the content key
    return spec;
  }

  /// A small deterministic result for `spec`: what every worker
  /// computing this spec would produce.
  [[nodiscard]] static RunResult result_for(const ScenarioSpec& spec) {
    RunResult result;
    result.scenario = spec.name;
    result.table = Table({"metric", "value"});
    result.table.add_row({"rows", spec.name});
    result.table.add_row({"answer", "42.5"});
    return result;
  }

  /// The residue of a writer killed mid-save: a truncated temp file
  /// following the store's "<key>.json.<writer>.tmp" staging pattern.
  void leave_truncated_tmp(const ResultStore& store,
                           const ScenarioSpec& spec,
                           const std::string& writer_tag) {
    const fs::path tmp = store.entry_path(store.key(spec)).string() +
                         "." + writer_tag + ".tmp";
    std::ofstream out(tmp, std::ios::trunc);
    out << "{\"format\": \"wi-result-v1\", \"key\": \"torso";  // cut off
  }

  fs::path dir_;
};

TEST_F(StoreContentionTest, SameKeyWritersNeverPublishACorruptEntry) {
  // 8 "processes" hammer the SAME key while a reader polls it. Under
  // the old fixed "<key>.json.tmp" staging name, writer B truncates
  // A's half-written file and A renames B's torso into place; with
  // per-writer temp names every rename publishes a complete body.
  const ScenarioSpec spec = spec_named("contended_key");
  const RunResult expected = result_for(spec);
  constexpr int kWriters = 8;
  constexpr int kRounds = 40;

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> loads_seen{0};
  ResultStore reader({dir_, "v1"});
  std::thread reader_thread([&] {
    while (!stop.load()) {
      if (const auto entry = reader.load(spec)) {
        ++loads_seen;
        // A half-written body would either fail to parse (counted as
        // corrupt) or carry a different table; both are fatal here.
        ASSERT_EQ(entry->table, expected.table);
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      ResultStore store({dir_, "v1"});
      for (int round = 0; round < kRounds; ++round) {
        store.save(spec, expected);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  reader_thread.join();

  EXPECT_GT(loads_seen.load(), 0u);
  EXPECT_EQ(reader.stats().corrupt_entries, 0u);
  // The completed write survives: a fresh store sees a clean hit.
  ResultStore verify({dir_, "v1"});
  const auto entry = verify.load(spec);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->table, expected.table);
  EXPECT_EQ(verify.stats().corrupt_entries, 0u);
}

TEST_F(StoreContentionTest, MixedKeysWithInjectedMidWriteKills) {
  // 6 workers × 30 writes over a mix of shared and distinct keys.
  // wi::fault::decide picks ~25% of the writes to "die" mid-save:
  // those leave a truncated temp file (the kill -9 residue) instead
  // of completing. Contract: no completed write is ever lost, no load
  // ever observes a corrupt entry, and the kill residue stays out of
  // the entry namespace.
  constexpr int kWorkers = 6;
  constexpr int kWrites = 30;
  constexpr std::uint64_t kKillSeed = 77;

  std::vector<std::thread> workers;
  std::vector<std::vector<int>> completed(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      ResultStore store({dir_, "v1"});
      for (int i = 0; i < kWrites; ++i) {
        // Even i: all workers share key "shared_<i>"; odd i: the key
        // is private to this worker.
        const std::string name =
            i % 2 == 0 ? "shared_" + std::to_string(i)
                       : "own_" + std::to_string(w) + "_" +
                             std::to_string(i);
        const ScenarioSpec spec = spec_named(name);
        const std::uint64_t op =
            static_cast<std::uint64_t>(w) * kWrites +
            static_cast<std::uint64_t>(i);
        if (fault::decide(kKillSeed, fault::Stream::kStoreFail, op,
                          0.25)) {
          leave_truncated_tmp(store, spec,
                              "killed" + std::to_string(op) + "-0");
          continue;  // this writer "died" before publishing
        }
        store.save(spec, result_for(spec));
        completed[static_cast<std::size_t>(w)].push_back(i);
      }
    });
  }
  for (auto& t : workers) t.join();

  // Every completed write is loadable and intact.
  ResultStore verify({dir_, "v1"});
  std::size_t checked = 0;
  for (int w = 0; w < kWorkers; ++w) {
    for (const int i : completed[static_cast<std::size_t>(w)]) {
      const std::string name =
          i % 2 == 0
              ? "shared_" + std::to_string(i)
              : "own_" + std::to_string(w) + "_" + std::to_string(i);
      const ScenarioSpec spec = spec_named(name);
      const auto entry = verify.load(spec);
      ASSERT_TRUE(entry.has_value()) << "lost completed write " << name;
      EXPECT_EQ(entry->table, result_for(spec).table);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
  EXPECT_EQ(verify.stats().corrupt_entries, 0u);
  // The kill residue is still there (young => the sweep above skipped
  // it), invisible to loads.
  EXPECT_GT(verify.stats().orphans_skipped, 0u);

  // An explicit ttl=0 store owns the directory outright and may sweep
  // everything; afterwards no temp files remain and all completed
  // entries still load.
  ResultStore sweeper({dir_, "v1", std::chrono::seconds{0}});
  EXPECT_GT(sweeper.stats().orphans_removed, 0u);
  EXPECT_EQ(sweeper.stats().orphans_skipped, 0u);
  std::size_t tmp_left = 0;
  for (const auto& file : fs::directory_iterator(dir_)) {
    if (file.path().extension() == ".tmp") ++tmp_left;
  }
  EXPECT_EQ(tmp_left, 0u);
  for (int w = 0; w < kWorkers; ++w) {
    for (const int i : completed[static_cast<std::size_t>(w)]) {
      const std::string name =
          i % 2 == 0
              ? "shared_" + std::to_string(i)
              : "own_" + std::to_string(w) + "_" + std::to_string(i);
      EXPECT_TRUE(sweeper.load(spec_named(name)).has_value());
    }
  }
}

TEST_F(StoreContentionTest, OrphanSweepIsAgeGated) {
  const ScenarioSpec spec = spec_named("sweep_target");
  fs::path stale;
  {
    ResultStore store({dir_, "v1"});
    store.save(spec, result_for(spec));
    // Two orphans: one fresh (a peer's in-flight write) and one
    // backdated beyond the ttl (a crash leftover).
    leave_truncated_tmp(store, spec, "young-0");
    leave_truncated_tmp(store, spec, "stale-0");
    stale = store.entry_path(store.key(spec)).string() + ".stale-0.tmp";
  }
  fs::last_write_time(stale, fs::file_time_type::clock::now() -
                                 std::chrono::hours(2));

  ResultStore swept({dir_, "v1"});  // default ttl: 10 minutes
  const ResultStoreStats stats = swept.stats();
  EXPECT_EQ(stats.orphans_removed, 1u) << "only the stale orphan goes";
  EXPECT_EQ(stats.orphans_skipped, 1u) << "the young one is in flight";
  EXPECT_FALSE(fs::exists(stale));
  EXPECT_TRUE(swept.load(spec).has_value()) << "real entries untouched";
}

TEST_F(StoreContentionTest, SweepStillRemovesLegacyFixedNameOrphans) {
  // Stores written before the unique-name scheme staged into
  // "<key>.json.tmp"; an old crash leftover in that shape must still
  // be swept once it ages out.
  ResultStore store({dir_, "v1"});
  const fs::path legacy =
      store.entry_path(store.key(spec_named("legacy"))).string() + ".tmp";
  {
    std::ofstream out(legacy, std::ios::trunc);
    out << "{\"torso";
  }
  fs::last_write_time(legacy, fs::file_time_type::clock::now() -
                                  std::chrono::hours(2));
  ResultStore sweeper({dir_, "v1"});
  EXPECT_EQ(sweeper.stats().orphans_removed, 1u);
  EXPECT_FALSE(fs::exists(legacy));
}

}  // namespace
}  // namespace wi::sim

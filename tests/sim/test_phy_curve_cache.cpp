#include "wi/sim/phy_curve_cache.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "wi/common/math.hpp"

namespace wi::sim {
namespace {

using core::PhyAbstraction;
using core::PhyReceiver;

TEST(PhyCurveCache, HitMissAccounting) {
  PhyCurveCache cache;
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);

  const auto a = cache.get(PhyReceiver::kUnquantized);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 1u);

  const auto b = cache.get(PhyReceiver::kUnquantized);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  // Cache hit returns the identical curve instance.
  EXPECT_EQ(a.get(), b.get());

  // A different key is its own entry.
  const auto c = cache.get(PhyReceiver::kUnquantized, 25e9, 1);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(a.get(), c.get());
}

TEST(PhyCurveCache, CachedCurveBitwiseEqualsFreshBuild) {
  PhyCurveCache cache;
  const auto cached = cache.get(PhyReceiver::kUnquantized, 25e9, 2);
  const PhyAbstraction fresh(PhyReceiver::kUnquantized, 25e9, 2);
  for (const double snr : linspace(-10.0, 40.0, 101)) {
    // Bitwise equality: the cache must not perturb the curve.
    EXPECT_EQ(cached->info_rate_bpcu(snr), fresh.info_rate_bpcu(snr))
        << "snr " << snr;
    EXPECT_EQ(cached->link_rate_gbps(snr), fresh.link_rate_gbps(snr));
  }
  for (const double target : {1.0, 20.0, 60.0, 99.0}) {
    EXPECT_EQ(cached->required_snr_db(target), fresh.required_snr_db(target));
  }
}

TEST(PhyCurveCache, ConcurrentGetsShareOneBuild) {
  PhyCurveCache cache;
  std::vector<PhyCurveCache::CurvePtr> results(8);
  std::vector<std::thread> threads;
  threads.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    threads.emplace_back([&cache, &results, i] {
      results[i] = cache.get(PhyReceiver::kUnquantized);
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r.get(), results[0].get());
  }
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), results.size() - 1);
  EXPECT_EQ(cache.size(), 1u);
}

// --- PhyAbstraction::required_snr_db edge cases (satellite coverage) ---

TEST(PhyAbstractionEdges, TargetAboveCeilingIsInfinite) {
  const PhyAbstraction phy(PhyReceiver::kUnquantized);
  // 2 bpcu * 25 GHz * 2 pol = 100 Gbit/s ceiling; far beyond -> +inf.
  const double snr = phy.required_snr_db(500.0);
  EXPECT_TRUE(std::isinf(snr));
  EXPECT_GT(snr, 0.0);
}

TEST(PhyAbstractionEdges, TinyTargetClampsAtGridStart) {
  const PhyAbstraction phy(PhyReceiver::kUnquantized);
  // Targets at or below the curve floor clamp to the first grid SNR
  // (-5 dB) instead of extrapolating below the tabulated range.
  EXPECT_DOUBLE_EQ(phy.required_snr_db(0.0), -5.0);
  EXPECT_DOUBLE_EQ(phy.required_snr_db(1e-12), -5.0);
}

TEST(PhyAbstractionEdges, CeilingTargetStaysWithinGrid) {
  const PhyAbstraction phy(PhyReceiver::kUnquantized);
  // A target exactly at the achievable ceiling must return a finite SNR
  // no larger than the grid end (35 dB).
  const double ceiling_gbps = phy.link_rate_gbps(35.0);
  const double snr = phy.required_snr_db(ceiling_gbps);
  EXPECT_FALSE(std::isinf(snr));
  EXPECT_LE(snr, 35.0 + 1e-12);
}

TEST(PhyAbstractionEdges, RequiredSnrMonotoneInTarget) {
  const PhyAbstraction phy(PhyReceiver::kUnquantized);
  double prev = -1e9;
  for (const double target : linspace(1.0, 99.0, 25)) {
    const double snr = phy.required_snr_db(target);
    EXPECT_GE(snr, prev - 1e-12) << "target " << target;
    prev = snr;
  }
}

}  // namespace
}  // namespace wi::sim

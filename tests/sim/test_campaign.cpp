#include "wi/sim/campaign.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <set>

#include "wi/sim/registry.hpp"
#include "wi/sim/result_store.hpp"
#include "wi/sim/scenario_json.hpp"
#include "wi/sim/workloads/flit_sim.hpp"
#include "wi/sim/workloads/info_rates.hpp"

namespace wi::sim {
namespace {

namespace fs = std::filesystem;

/// Small, fully stochastic scenario: flit-level DES on a 4x4 mesh with
/// >= 10 injection rates (10 grid points) and a short window — the
/// campaign workhorse of this suite.
[[nodiscard]] ScenarioSpec flit_scenario(std::size_t rates = 10) {
  ScenarioSpec spec;
  spec.name = "flit_4x4";
  spec.workload = "flit_sim";
  spec.noc.topology.kind = TopologySpec::Kind::kMesh2d;
  spec.noc.topology.kx = 4;
  spec.noc.topology.ky = 4;
  auto& flit = spec.payload<FlitSimSpec>();
  flit.warmup_cycles = 200;
  flit.measure_cycles = 1000;
  flit.injection_rates.clear();
  for (std::size_t i = 0; i < rates; ++i) {
    flit.injection_rates.push_back(0.02 + 0.02 * static_cast<double>(i));
  }
  return spec;
}

[[nodiscard]] CampaignSpec flit_campaign(std::size_t seeds,
                                         std::uint64_t base_seed = 1) {
  CampaignSpec campaign;
  campaign.seeds = seeds;
  campaign.base_seed = base_seed;
  campaign.scenario = flit_scenario();
  return campaign;
}

TEST(CampaignSeed, IsAPureFunctionOfBaseAndIndex) {
  EXPECT_EQ(campaign_seed(1, 0), campaign_seed(1, 0));
  EXPECT_EQ(campaign_seed(42, 7), campaign_seed(42, 7));
  // Extending a campaign keeps the existing replicas: seed k does not
  // depend on how many seeds the campaign runs in total.
  std::set<std::uint64_t> seen;
  for (std::size_t k = 0; k < 100; ++k) seen.insert(campaign_seed(1, k));
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_NE(campaign_seed(1, 0), campaign_seed(2, 0));
}

TEST(CampaignSeed, ScenarioForSeedReseedsTheWorkloadPayload) {
  const ScenarioSpec base = flit_scenario();
  const ScenarioSpec replica = scenario_for_seed(base, 77);
  EXPECT_EQ(replica.name, "flit_4x4@seed=77");
  // The reseeding is dispatched to the workload runner: the flit_sim
  // runner points its DES seed at the replica seed...
  EXPECT_EQ(replica.payload<FlitSimSpec>().seed, 77u);
  // ...and the info_rates runner its Monte-Carlo seed.
  ScenarioSpec info;
  info.name = "info";
  info.workload = "info_rates";
  EXPECT_EQ(scenario_for_seed(info, 78).payload<InfoRateSpec>().mc_seed,
            78u);
  // Distinct replicas get distinct canonical specs => distinct store keys.
  EXPECT_NE(scenario_to_string(replica),
            scenario_to_string(scenario_for_seed(base, 78)));
}

TEST(CampaignAggregate, MatchesHandComputedStatistics) {
  Table a({"x", "value", "label"});
  a.add_row({"1", "10", "const"});
  Table b({"x", "value", "label"});
  b.add_row({"1", "20", "const"});
  Table c({"x", "value", "label"});
  c.add_row({"1", "30", "const"});
  const Table agg = aggregate_tables({a, b, c});
  ASSERT_EQ(agg.headers(), campaign_headers());
  // "label" is non-numeric -> skipped; "x" and "value" aggregate.
  ASSERT_EQ(agg.rows(), 2u);
  EXPECT_EQ(agg.cell(0, 2), "x");
  EXPECT_EQ(agg.cell(0, 1), "1");   // key: shared first cell
  EXPECT_EQ(agg.cell(0, 4), "1");   // mean of the constant column
  EXPECT_EQ(agg.cell(0, 5), "0");   // stddev 0
  EXPECT_EQ(agg.cell(1, 2), "value");
  EXPECT_EQ(agg.cell(1, 3), "3");   // seeds
  EXPECT_EQ(agg.cell(1, 4), "20");  // mean(10, 20, 30)
  EXPECT_EQ(agg.cell(1, 5), "10");  // sample stddev
  EXPECT_EQ(agg.cell(1, 6), "10");  // min
  EXPECT_EQ(agg.cell(1, 7), "30");  // max
  // ci95 = 1.96 * 10 / sqrt(3)
  EXPECT_NEAR(std::stod(agg.cell(1, 8)), 1.96 * 10.0 / std::sqrt(3.0),
              1e-12);
}

TEST(CampaignAggregate, SkipsNonFiniteAndDisagreeingKeys) {
  Table a({"k", "v"});
  a.add_row({"p", "nan"});
  Table b({"k", "v"});
  b.add_row({"q", "2.0"});
  const Table agg = aggregate_tables({a, b});
  // "v" is non-finite in one replica -> skipped entirely; "k" is
  // non-numeric -> skipped; only the disagreeing key remains visible
  // through... nothing: no numeric column survives.
  EXPECT_EQ(agg.rows(), 0u);

  Table c({"k", "v"});
  c.add_row({"p", "1"});
  Table d({"k", "v"});
  d.add_row({"q", "3"});
  const Table agg2 = aggregate_tables({c, d});
  ASSERT_EQ(agg2.rows(), 1u);
  EXPECT_EQ(agg2.cell(0, 1), "-");  // first cells disagree -> no key
  EXPECT_EQ(agg2.cell(0, 4), "2");
}

TEST(CampaignAggregate, ShapeMismatchThrows) {
  Table a({"x"});
  a.add_row({"1"});
  Table b({"y"});
  b.add_row({"1"});
  EXPECT_THROW((void)aggregate_tables({a, b}), StatusError);
  Table c({"x"});
  EXPECT_THROW((void)aggregate_tables({a, c}), StatusError);  // row count
  EXPECT_EQ(aggregate_tables({}).rows(), 0u);
}

TEST(Campaign, RunAggregatesAllSeeds) {
  const Campaign campaign(flit_campaign(3));
  SimEngine engine({1});
  const CampaignResult result = campaign.run(engine);
  ASSERT_TRUE(result.ok()) << result.status.to_string();
  EXPECT_EQ(result.per_seed.size(), 3u);
  for (const auto& replica : result.per_seed) {
    EXPECT_TRUE(replica.ok());
    EXPECT_EQ(replica.table.rows(), 10u);
  }
  // 10 rows x 5 numeric columns (inj_rate, latency, throughput,
  // delivered, injected; "stable" is yes/no).
  EXPECT_EQ(result.aggregate.rows(), 50u);
  EXPECT_EQ(result.aggregate.headers(), campaign_headers());
}

TEST(Campaign, FailedReplicaFailsTheCampaign) {
  CampaignSpec invalid = flit_campaign(2);
  invalid.scenario.noc.topology.kx = 0;  // caught by validation
  EXPECT_THROW(Campaign{invalid}, StatusError);

  // Passes validation but fails in execution: bit-complement traffic
  // needs a power-of-two module count; a 3x3 mesh has 9 modules.
  CampaignSpec broken = flit_campaign(2);
  broken.scenario.noc.topology.kx = 3;
  broken.scenario.noc.topology.ky = 3;
  broken.scenario.noc.traffic = TrafficKind::kBitComplement;
  const Campaign campaign(broken);
  SimEngine engine({1});
  const CampaignResult result = campaign.run(engine);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status.message().find("seed replicas failed"),
            std::string::npos);
  EXPECT_EQ(result.per_seed.size(), 2u);
  EXPECT_EQ(result.aggregate.rows(), 0u);
}

TEST(Campaign, ZeroSeedsIsInvalid) {
  CampaignSpec spec = flit_campaign(0);
  EXPECT_FALSE(spec.validate().is_ok());
}

/// Satellite: determinism stress — >= 8 seeds x >= 10 grid points must
/// be bit-identical at 1 vs 4 worker threads, per-seed and aggregated.
TEST(Campaign, ThreadCountDoesNotChangeAnyBit) {
  const Campaign campaign(flit_campaign(8));
  SimEngine engine;
  const CampaignResult serial = campaign.run(engine, nullptr, 1);
  const CampaignResult parallel = campaign.run(engine, nullptr, 4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial.per_seed.size(), parallel.per_seed.size());
  for (std::size_t k = 0; k < serial.per_seed.size(); ++k) {
    EXPECT_EQ(serial.per_seed[k].scenario, parallel.per_seed[k].scenario);
    EXPECT_EQ(serial.per_seed[k].table, parallel.per_seed[k].table)
        << "seed replica " << k << " differs between 1 and 4 threads";
  }
  EXPECT_EQ(serial.aggregate, parallel.aggregate);
}

TEST(Campaign, StoreMakesRepeatRunsFullCacheHits) {
  const fs::path dir =
      fs::temp_directory_path() / "wi_campaign_store_test";
  fs::remove_all(dir);
  const Campaign campaign(flit_campaign(4));
  SimEngine engine({2});
  {
    ResultStore store({dir, "v1"});
    const CampaignResult first = campaign.run(engine, &store);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(store.misses(), 4u);
    EXPECT_EQ(store.hits(), 0u);
    const CampaignResult second = campaign.run(engine, &store);
    EXPECT_EQ(store.misses(), 4u);
    EXPECT_EQ(store.hits(), 4u);
    EXPECT_EQ(second.aggregate, first.aggregate);
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_EQ(second.per_seed[k].table, first.per_seed[k].table);
    }
  }
  fs::remove_all(dir);
}

TEST(Campaign, InterruptedCampaignResumesPerSeed) {
  const fs::path dir =
      fs::temp_directory_path() / "wi_campaign_resume_test";
  fs::remove_all(dir);
  const CampaignSpec spec = flit_campaign(4);
  SimEngine engine({1});
  // "Interrupted" campaign: only replicas 0 and 2 were persisted.
  {
    ResultStore store({dir, "v1"});
    for (const std::size_t k : {0u, 2u}) {
      const ScenarioSpec replica = scenario_for_seed(
          spec.scenario, campaign_seed(spec.base_seed, k));
      store.save(replica, engine.run(replica));
    }
  }
  ResultStore store({dir, "v1"});
  const Campaign campaign(spec);
  const CampaignResult resumed = campaign.run(engine, &store);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(store.hits(), 2u);
  EXPECT_EQ(store.misses(), 2u);
  // And the aggregate equals an uncached run's.
  const CampaignResult fresh = campaign.run(engine);
  EXPECT_EQ(resumed.aggregate, fresh.aggregate);
  fs::remove_all(dir);
}

TEST(CampaignCi, GoldenInsideCiPasses) {
  const Campaign campaign(flit_campaign(4));
  SimEngine engine({1});
  const CampaignResult result = campaign.run(engine);
  ASSERT_TRUE(result.ok());
  // Same aggregate as golden: trivially inside its own CI.
  EXPECT_TRUE(
      check_campaign_ci(result.aggregate, result.aggregate).is_ok());
}

TEST(CampaignCi, ShiftedMeanAndGridMismatchFail) {
  Table a({"x", "v"});
  a.add_row({"1", "10"});
  Table b({"x", "v"});
  b.add_row({"1", "12"});
  const Table actual = aggregate_tables({a, b});

  // Golden with a mean far outside the CI of (10, 12).
  Table c({"x", "v"});
  c.add_row({"1", "100"});
  Table d({"x", "v"});
  d.add_row({"1", "102"});
  const Table golden = aggregate_tables({c, d});
  const Status shifted = check_campaign_ci(actual, golden);
  EXPECT_FALSE(shifted.is_ok());
  EXPECT_NE(shifted.message().find("outside CI"), std::string::npos);

  // Grid mismatch: different column set.
  Table e({"x", "w"});
  e.add_row({"1", "10"});
  Table f({"x", "w"});
  f.add_row({"1", "12"});
  EXPECT_FALSE(check_campaign_ci(actual, aggregate_tables({e, f})).is_ok());

  // Row-count mismatch.
  Table g({"x", "v"});
  g.add_row({"1", "10"});
  g.add_row({"2", "11"});
  Table h({"x", "v"});
  h.add_row({"1", "12"});
  h.add_row({"2", "13"});
  EXPECT_FALSE(check_campaign_ci(actual, aggregate_tables({g, h})).is_ok());

  // Non-aggregate schema is rejected outright.
  EXPECT_FALSE(check_campaign_ci(a, golden).is_ok());
}

TEST(CampaignCi, AbsTolFloorsZeroVarianceCells) {
  Table a({"x", "v"});
  a.add_row({"1", "10"});
  const Table actual = aggregate_tables({a, a});  // stddev 0, CI 0
  Table b({"x", "v"});
  b.add_row({"1", "10.0000000001"});
  const Table golden = aggregate_tables({b, b});
  CiCheckOptions loose;
  loose.abs_tol = 1e-6;
  EXPECT_TRUE(check_campaign_ci(actual, golden, loose).is_ok());
  CiCheckOptions strict;
  strict.abs_tol = 1e-12;
  EXPECT_FALSE(check_campaign_ci(actual, golden, strict).is_ok());
}

TEST(CampaignJson, SpecRoundTripsAndRejectsUnknownKeys) {
  CampaignSpec spec;
  spec.name = "c";
  spec.description = "round trip";
  spec.seeds = 12;
  spec.base_seed = 99;
  spec.scenario = flit_scenario(3);
  const CampaignSpec decoded =
      campaign_from_string(campaign_to_string(spec));
  EXPECT_EQ(decoded.name, spec.name);
  EXPECT_EQ(decoded.description, spec.description);
  EXPECT_EQ(decoded.seeds, spec.seeds);
  EXPECT_EQ(decoded.base_seed, spec.base_seed);
  EXPECT_EQ(scenario_to_string(decoded.scenario),
            scenario_to_string(spec.scenario));

  EXPECT_THROW((void)campaign_from_string(R"({"sceario": {}})"),
               StatusError);
  EXPECT_THROW((void)campaign_from_string(R"({"seeds": 2.5})"),
               StatusError);
  EXPECT_THROW((void)campaign_from_string(R"([1, 2])"), StatusError);
}

TEST(CampaignJson, RegistryCampaignScenariosRoundTripThroughCampaigns) {
  // The four campaign_* registry entries are the golden families; their
  // wrapped campaign documents must survive the codec unchanged.
  for (const char* name :
       {"campaign_info_rates", "campaign_adc_energy",
        "campaign_flit_mesh2d_8x8", "campaign_flit_star_mesh_4x4c4"}) {
    CampaignSpec spec;
    spec.seeds = 8;
    spec.base_seed = 1;
    spec.scenario = ScenarioRegistry::paper().get(name);
    const CampaignSpec decoded =
        campaign_from_string(campaign_to_string(spec));
    EXPECT_EQ(campaign_to_string(decoded), campaign_to_string(spec))
        << name;
  }
}

}  // namespace
}  // namespace wi::sim

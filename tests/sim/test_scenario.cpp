#include "wi/sim/scenario.hpp"

#include <gtest/gtest.h>

#include "wi/sim/workloads/hybrid_system.hpp"
#include "wi/sim/workloads/tx_power_sweep.hpp"

namespace wi::sim {
namespace {

TEST(ScenarioSpec, DefaultsValidate) {
  ScenarioSpec spec;
  spec.name = "defaults";
  EXPECT_TRUE(spec.validate().is_ok());
}

TEST(ScenarioSpec, TableIDefaults) {
  // The declarative defaults must match the paper's Table I budget.
  const ScenarioSpec spec;
  EXPECT_DOUBLE_EQ(spec.link.budget.carrier_freq_hz, 232.5e9);
  EXPECT_DOUBLE_EQ(spec.link.budget.bandwidth_hz, 25e9);
  EXPECT_DOUBLE_EQ(spec.link.budget.rx_noise_figure_db, 10.0);
  EXPECT_DOUBLE_EQ(spec.link.budget.array_gain_db, 12.0);
  EXPECT_DOUBLE_EQ(spec.link.budget.butler_inaccuracy_db, 5.0);
  EXPECT_DOUBLE_EQ(spec.link.budget.rx_temperature_k, 323.0);
  EXPECT_EQ(spec.phy.polarizations, 2u);
  EXPECT_DOUBLE_EQ(spec.phy.bandwidth_hz, 25e9);
}

TEST(ScenarioSpec, RejectsEmptyName) {
  const ScenarioSpec unnamed;  // default name is empty
  EXPECT_EQ(unnamed.validate().code(), StatusCode::kInvalidSpec);
}

TEST(ScenarioSpec, RejectsBadFields) {
  ScenarioSpec spec;
  // std::string temporary: GCC 12 -O3 misfires -Wrestrict on the
  // char* assignment path here.
  spec.name = std::string("x");
  spec.geometry.boards = 0;
  EXPECT_EQ(spec.validate().code(), StatusCode::kInvalidSpec);
  spec.geometry.boards = 2;

  spec.phy.polarizations = 0;
  EXPECT_EQ(spec.validate().code(), StatusCode::kInvalidSpec);
  spec.phy.polarizations = 2;

  spec.workload = "hybrid_system";
  spec.payload<HybridSpec>().config.inter_board_fraction = 1.5;
  EXPECT_EQ(spec.validate().code(), StatusCode::kInvalidSpec);
  spec.payload<HybridSpec>().config.inter_board_fraction = 0.3;
  EXPECT_TRUE(spec.validate().is_ok());

  // An unregistered workload name is itself an invalid spec.
  spec.workload = "no_such_workload";
  EXPECT_EQ(spec.validate().code(), StatusCode::kInvalidSpec);
}

TEST(ScenarioSpec, ValidateMessagesNameTheScenario) {
  ScenarioSpec spec;
  spec.name = "my_scenario";
  spec.workload = "tx_power_sweep";
  spec.payload<TxPowerSpec>().snr_step_db = 0.0;
  const Status status = spec.validate();
  EXPECT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("my_scenario"), std::string::npos);
}

TEST(ExpandGrid, CartesianProductAndNames) {
  ScenarioSpec base;
  base.name = "base";
  const SweepAxis a{"ptx",
                    {1.0, 2.0, 3.0},
                    [](ScenarioSpec& s, double v) { s.link.ptx_dbm = v; }};
  const SweepAxis b{"sep",
                    {50.0, 100.0},
                    [](ScenarioSpec& s, double v) {
                      s.geometry.separation_mm = v;
                    }};
  const auto grid = expand_grid(base, {a, b});
  ASSERT_EQ(grid.size(), 6u);
  // First axis varies slowest; names record every override.
  EXPECT_EQ(grid[0].name, "base/ptx=1;sep=50");
  EXPECT_EQ(grid[1].name, "base/ptx=1;sep=100");
  EXPECT_EQ(grid[5].name, "base/ptx=3;sep=100");
  EXPECT_DOUBLE_EQ(grid[0].link.ptx_dbm, 1.0);
  EXPECT_DOUBLE_EQ(grid[5].link.ptx_dbm, 3.0);
  EXPECT_DOUBLE_EQ(grid[5].geometry.separation_mm, 100.0);
}

TEST(ExpandGrid, NoAxesYieldsBase) {
  ScenarioSpec base;
  base.name = "solo";
  const auto grid = expand_grid(base, {});
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_EQ(grid[0].name, "solo");
}

TEST(ExpandGrid, RejectsEmptyAxis) {
  const ScenarioSpec base;
  const SweepAxis empty{"x", {}, [](ScenarioSpec&, double) {}};
  EXPECT_THROW((void)expand_grid(base, {empty}), StatusError);
  const SweepAxis no_apply{"y", {1.0}, nullptr};
  EXPECT_THROW((void)expand_grid(base, {no_apply}), StatusError);
}

TEST(TopologySpec, BuildsDeclaredKinds) {
  TopologySpec spec;
  spec.kind = TopologySpec::Kind::kMesh3d;
  spec.kx = 4;
  spec.ky = 4;
  spec.kz = 4;
  EXPECT_EQ(spec.build().module_count(), 64u);

  spec.kind = TopologySpec::Kind::kStarMesh;
  spec.concentration = 4;
  EXPECT_EQ(spec.build().module_count(), 64u);
}

TEST(TopologySpec, BadDimensionsBecomeStatusError) {
  TopologySpec spec;
  spec.kind = TopologySpec::Kind::kStarMesh;
  spec.concentration = 0;
  try {
    (void)spec.build();
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kInvalidSpec);
  }
}

}  // namespace
}  // namespace wi::sim

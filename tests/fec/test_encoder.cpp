#include "wi/fec/encoder.hpp"

#include <gtest/gtest.h>

#include "wi/common/rng.hpp"
#include "wi/fec/ldpc_code.hpp"

namespace wi::fec {
namespace {

TEST(Encoder, TinyMatrixRankAndDims) {
  // H = [1 1 0; 0 1 1]: rank 2, one free bit.
  SparseBinaryMatrix h(2, 3);
  h.insert(0, 0);
  h.insert(0, 1);
  h.insert(1, 1);
  h.insert(1, 2);
  const GaussianEncoder encoder(h);
  EXPECT_EQ(encoder.rank(), 2u);
  EXPECT_EQ(encoder.info_length(), 1u);
  EXPECT_EQ(encoder.block_length(), 3u);
}

TEST(Encoder, TinyMatrixCodewordsValid) {
  SparseBinaryMatrix h(2, 3);
  h.insert(0, 0);
  h.insert(0, 1);
  h.insert(1, 1);
  h.insert(1, 2);
  const GaussianEncoder encoder(h);
  // Only codewords of this H: 000 and 111.
  EXPECT_TRUE(h.in_null_space(encoder.encode({0})));
  const auto one = encoder.encode({1});
  EXPECT_TRUE(h.in_null_space(one));
  EXPECT_EQ(one, (std::vector<std::uint8_t>{1, 1, 1}));
}

TEST(Encoder, BlockCodeCodewordsSatisfyH) {
  const QcLdpcBlockCode code(BaseMatrix({{4, 4}}), 40, 5);
  const GaussianEncoder encoder(code.parity_check());
  // Rank can be slightly below N (circulant sums are often singular);
  // the information length adjusts accordingly.
  EXPECT_LE(encoder.rank(), 40u);
  EXPECT_EQ(encoder.info_length(), 80u - encoder.rank());
  Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::uint8_t> info(encoder.info_length());
    for (auto& b : info) b = static_cast<std::uint8_t>(rng.uniform_int(2));
    EXPECT_TRUE(code.parity_check().in_null_space(encoder.encode(info)));
  }
}

TEST(Encoder, ConvolutionalCodewordsSatisfyH) {
  const LdpcConvolutionalCode code(EdgeSpreading::paper_example(), 15, 8,
                                   6);
  const GaussianEncoder encoder(code.parity_check());
  Rng rng(42);
  std::vector<std::uint8_t> info(encoder.info_length());
  for (auto& b : info) b = static_cast<std::uint8_t>(rng.uniform_int(2));
  const auto codeword = encoder.encode(info);
  EXPECT_EQ(codeword.size(), code.codeword_length());
  EXPECT_TRUE(code.parity_check().in_null_space(codeword));
}

TEST(Encoder, LinearityOverGf2) {
  const QcLdpcBlockCode code(BaseMatrix({{2, 2}}), 20, 8);
  const GaussianEncoder encoder(code.parity_check());
  Rng rng(43);
  std::vector<std::uint8_t> u(encoder.info_length());
  std::vector<std::uint8_t> v(encoder.info_length());
  for (auto& b : u) b = static_cast<std::uint8_t>(rng.uniform_int(2));
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.uniform_int(2));
  std::vector<std::uint8_t> w(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) w[i] = u[i] ^ v[i];
  const auto cu = encoder.encode(u);
  const auto cv = encoder.encode(v);
  const auto cw = encoder.encode(w);
  for (std::size_t i = 0; i < cw.size(); ++i) {
    EXPECT_EQ(cw[i], cu[i] ^ cv[i]);
  }
}

TEST(Encoder, InfoBitsRecoverableFromCodeword) {
  const QcLdpcBlockCode code(BaseMatrix({{2, 2}}), 16, 9);
  const GaussianEncoder encoder(code.parity_check());
  Rng rng(44);
  std::vector<std::uint8_t> info(encoder.info_length());
  for (auto& b : info) b = static_cast<std::uint8_t>(rng.uniform_int(2));
  const auto codeword = encoder.encode(info);
  const auto& positions = encoder.info_positions();
  for (std::size_t i = 0; i < info.size(); ++i) {
    EXPECT_EQ(codeword[positions[i]], info[i]);
  }
}

TEST(Encoder, RejectsWrongInfoLength) {
  SparseBinaryMatrix h(1, 3);
  h.insert(0, 0);
  h.insert(0, 1);
  const GaussianEncoder encoder(h);
  EXPECT_THROW(encoder.encode({1}), std::invalid_argument);
}

TEST(Encoder, AllZeroInfoGivesAllZeroCodeword) {
  const QcLdpcBlockCode code(BaseMatrix({{4, 4}}), 25, 10);
  const GaussianEncoder encoder(code.parity_check());
  const auto codeword =
      encoder.encode(std::vector<std::uint8_t>(encoder.info_length(), 0));
  for (const auto bit : codeword) EXPECT_EQ(bit, 0);
}

}  // namespace
}  // namespace wi::fec

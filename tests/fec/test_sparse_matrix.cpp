#include "wi/fec/sparse_matrix.hpp"

#include <gtest/gtest.h>

namespace wi::fec {
namespace {

TEST(SparseMatrix, InsertAndContains) {
  SparseBinaryMatrix m(3, 4);
  m.insert(0, 1);
  m.insert(2, 3);
  EXPECT_TRUE(m.contains(0, 1));
  EXPECT_TRUE(m.contains(2, 3));
  EXPECT_FALSE(m.contains(0, 0));
  EXPECT_EQ(m.nonzeros(), 2u);
}

TEST(SparseMatrix, AdjacencySorted) {
  SparseBinaryMatrix m(2, 5);
  m.insert(0, 4);
  m.insert(0, 1);
  m.insert(0, 3);
  const auto& row = m.row(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_TRUE(row[0] < row[1] && row[1] < row[2]);
}

TEST(SparseMatrix, RejectsDuplicatesAndOutOfRange) {
  SparseBinaryMatrix m(2, 2);
  m.insert(0, 0);
  EXPECT_THROW(m.insert(0, 0), std::invalid_argument);
  EXPECT_THROW(m.insert(2, 0), std::out_of_range);
  EXPECT_THROW(m.insert(0, 2), std::out_of_range);
  EXPECT_THROW(SparseBinaryMatrix(0, 1), std::invalid_argument);
}

TEST(SparseMatrix, SyndromeComputation) {
  // H = [1 1 0; 0 1 1].
  SparseBinaryMatrix h(2, 3);
  h.insert(0, 0);
  h.insert(0, 1);
  h.insert(1, 1);
  h.insert(1, 2);
  EXPECT_EQ(h.syndrome({1, 1, 0}), (std::vector<std::uint8_t>{0, 1}));
  EXPECT_EQ(h.syndrome({1, 1, 1}), (std::vector<std::uint8_t>{0, 0}));
  EXPECT_TRUE(h.in_null_space({1, 1, 1}));
  EXPECT_FALSE(h.in_null_space({1, 0, 0}));
  EXPECT_TRUE(h.in_null_space({0, 0, 0}));
}

TEST(SparseMatrix, SyndromeRejectsWrongLength) {
  SparseBinaryMatrix h(1, 3);
  EXPECT_THROW(h.syndrome({1, 0}), std::invalid_argument);
  EXPECT_THROW((void)h.in_null_space({1, 0, 0, 1}), std::invalid_argument);
}

TEST(SparseMatrix, GirthOfFourCycle) {
  // Two checks sharing two variables: the classic 4-cycle.
  SparseBinaryMatrix h(2, 2);
  h.insert(0, 0);
  h.insert(0, 1);
  h.insert(1, 0);
  h.insert(1, 1);
  EXPECT_EQ(h.girth(), 4u);
}

TEST(SparseMatrix, GirthOfSixCycle) {
  // Three checks, three variables in a ring: girth 6.
  SparseBinaryMatrix h(3, 3);
  h.insert(0, 0);
  h.insert(0, 1);
  h.insert(1, 1);
  h.insert(1, 2);
  h.insert(2, 2);
  h.insert(2, 0);
  EXPECT_EQ(h.girth(), 6u);
}

TEST(SparseMatrix, GirthOfTreeIsCapPlusTwo) {
  // A star (one check, many variables) has no cycle.
  SparseBinaryMatrix h(1, 5);
  for (std::size_t c = 0; c < 5; ++c) h.insert(0, c);
  EXPECT_EQ(h.girth(12), 14u);
}

}  // namespace
}  // namespace wi::fec

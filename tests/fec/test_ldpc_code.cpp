#include "wi/fec/ldpc_code.hpp"

#include <gtest/gtest.h>

namespace wi::fec {
namespace {

TEST(QcBlockCode, DimensionsAndRegularity) {
  // B = [4,4] lifted by N: H is N x 2N with row weight 8, column
  // weight 4 ((4,8)-regular, as in the paper).
  const QcLdpcBlockCode code(BaseMatrix({{4, 4}}), 50, 3);
  const auto& h = code.parity_check();
  EXPECT_EQ(h.rows(), 50u);
  EXPECT_EQ(h.cols(), 100u);
  for (std::size_t r = 0; r < h.rows(); ++r) {
    EXPECT_EQ(h.row(r).size(), 8u);
  }
  for (std::size_t c = 0; c < h.cols(); ++c) {
    EXPECT_EQ(h.col(c).size(), 4u);
  }
}

TEST(QcBlockCode, DesignRate) {
  EXPECT_DOUBLE_EQ(QcLdpcBlockCode(BaseMatrix({{4, 4}}), 20, 1).design_rate(),
                   0.5);
  EXPECT_DOUBLE_EQ(
      QcLdpcBlockCode(BaseMatrix({{3, 3, 3}}), 20, 1).design_rate(),
      2.0 / 3.0);
}

TEST(QcBlockCode, GirthAwareConstruction) {
  // Multiplicity-4 circulants at tiny N cannot always avoid 4-cycles
  // (the shift difference sets collide mod N); the construction must
  // still return a simple graph, and at larger N it should reach
  // girth 6.
  const QcLdpcBlockCode small(BaseMatrix({{4, 4}}), 25, 5, 32);
  EXPECT_GE(small.parity_check().girth(), 4u);
  const QcLdpcBlockCode large(BaseMatrix({{4, 4}}), 200, 5, 32);
  EXPECT_GE(large.parity_check().girth(), 6u);
}

TEST(QcBlockCode, DeterministicBySeed) {
  const QcLdpcBlockCode a(BaseMatrix({{4, 4}}), 30, 9);
  const QcLdpcBlockCode b(BaseMatrix({{4, 4}}), 30, 9);
  for (std::size_t r = 0; r < a.parity_check().rows(); ++r) {
    EXPECT_EQ(a.parity_check().row(r), b.parity_check().row(r));
  }
}

TEST(QcBlockCode, RejectsTooSmallLifting) {
  // Multiplicity 4 needs at least 4 distinct shifts.
  EXPECT_THROW(QcLdpcBlockCode(BaseMatrix({{4, 4}}), 3, 1),
               std::invalid_argument);
  EXPECT_THROW(QcLdpcBlockCode(BaseMatrix({{1}}), 0, 1),
               std::invalid_argument);
}

TEST(ConvolutionalCode, DimensionsFollowEq3) {
  const LdpcConvolutionalCode code(EdgeSpreading::paper_example(), 25, 10,
                                   3);
  EXPECT_EQ(code.lifting(), 25u);
  EXPECT_EQ(code.termination(), 10u);
  EXPECT_EQ(code.mcc(), 2u);
  EXPECT_EQ(code.block_bits(), 50u);
  EXPECT_EQ(code.codeword_length(), 500u);
  const auto& h = code.parity_check();
  EXPECT_EQ(h.rows(), (10 + 2) * 25u);
  EXPECT_EQ(h.cols(), 10 * 2 * 25u);
}

TEST(ConvolutionalCode, InteriorVariablesRegular) {
  const LdpcConvolutionalCode code(EdgeSpreading::paper_example(), 20, 8, 4);
  const auto& h = code.parity_check();
  // Every variable has degree 4.
  for (std::size_t c = 0; c < h.cols(); ++c) {
    EXPECT_EQ(h.col(c).size(), 4u) << "col " << c;
  }
  // Interior checks have degree 8; the mcc leading and trailing check
  // blocks are lighter (termination).
  const std::size_t check_block = code.nc() * code.lifting();
  for (std::size_t r = 2 * check_block; r < h.rows() - 2 * check_block;
       ++r) {
    EXPECT_EQ(h.row(r).size(), 8u) << "row " << r;
  }
  EXPECT_LT(h.row(0).size(), 8u);
  EXPECT_LT(h.row(h.rows() - 1).size(), 8u);
}

TEST(ConvolutionalCode, Rates) {
  const LdpcConvolutionalCode code(EdgeSpreading::paper_example(), 40, 20,
                                   5);
  EXPECT_DOUBLE_EQ(code.rate_asymptotic(), 0.5);
  // Terminated: 1 - (L+2)/(2L) = (L-2)/(2L).
  EXPECT_DOUBLE_EQ(code.rate_terminated(), 18.0 / 40.0);
  // Rate loss shrinks as L grows (the paper's remark).
  const LdpcConvolutionalCode longer(EdgeSpreading::paper_example(), 40,
                                     100, 5);
  EXPECT_GT(longer.rate_terminated(), code.rate_terminated());
}

TEST(ConvolutionalCode, TimeInvariantLifting) {
  // The same component shifts are used at every time instant: block
  // rows t and t+1 (interior) have identical within-block structure.
  const LdpcConvolutionalCode code(EdgeSpreading::paper_example(), 15, 6,
                                   11);
  const auto& h = code.parity_check();
  const std::size_t bb = code.block_bits();     // 30
  const std::size_t cb = code.lifting();        // 15 checks per block
  // Compare check block 2 with check block 3 (both interior), shifted
  // by one variable block.
  for (std::size_t i = 0; i < cb; ++i) {
    const auto& row_a = h.row(2 * cb + i);
    const auto& row_b = h.row(3 * cb + i);
    ASSERT_EQ(row_a.size(), row_b.size());
    for (std::size_t k = 0; k < row_a.size(); ++k) {
      EXPECT_EQ(row_a[k] + bb, row_b[k]);
    }
  }
}

TEST(ConvolutionalCode, RejectsDegenerate) {
  EXPECT_THROW(
      LdpcConvolutionalCode(EdgeSpreading::paper_example(), 0, 10, 1),
      std::invalid_argument);
  EXPECT_THROW(
      LdpcConvolutionalCode(EdgeSpreading::paper_example(), 20, 0, 1),
      std::invalid_argument);
}

TEST(StructuralLatency, Eq4AndEq5) {
  // T_WD = W N nv R; T_B = N nv R. Paper example: N=40ish, W=5, R=1/2,
  // nv=2 -> 200 vs N=400 -> 400.
  EXPECT_DOUBLE_EQ(window_decoder_latency_bits(5, 40, 2, 0.5), 200.0);
  EXPECT_DOUBLE_EQ(block_code_latency_bits(400, 2, 0.5), 400.0);
  // Latency is linear in W.
  EXPECT_DOUBLE_EQ(window_decoder_latency_bits(8, 25, 2, 0.5), 200.0);
  EXPECT_DOUBLE_EQ(window_decoder_latency_bits(3, 25, 2, 0.5), 75.0);
}

}  // namespace
}  // namespace wi::fec

#include "wi/fec/ber.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wi::fec {
namespace {

TEST(BerBlock, HighSnrIsClean) {
  const QcLdpcBlockCode code(BaseMatrix({{4, 4}}), 50, 3);
  BerConfig config;
  config.ebn0_db = 8.0;
  config.max_codewords = 30;
  config.min_errors = 1000000;  // run all codewords
  const BerResult result = simulate_ber_block(code, config);
  EXPECT_EQ(result.bit_errors, 0u);
  EXPECT_EQ(result.codewords, 30u);
  EXPECT_EQ(result.bits, 30u * code.block_length());
}

TEST(BerBlock, LowSnrHasErrors) {
  const QcLdpcBlockCode code(BaseMatrix({{4, 4}}), 50, 3);
  BerConfig config;
  config.ebn0_db = -2.0;
  config.max_codewords = 20;
  config.min_errors = 50;
  const BerResult result = simulate_ber_block(code, config);
  EXPECT_GT(result.bit_errors, 0u);
  EXPECT_GT(result.ber, 0.01);
}

TEST(BerBlock, MonotoneNonIncreasingInSnr) {
  const QcLdpcBlockCode code(BaseMatrix({{4, 4}}), 60, 4);
  auto ber_at = [&](double ebn0) {
    BerConfig config;
    config.ebn0_db = ebn0;
    config.max_codewords = 60;
    config.min_errors = 80;
    config.seed = 7;
    return simulate_ber_block(code, config).ber;
  };
  const double low = ber_at(0.0);
  const double mid = ber_at(2.0);
  const double high = ber_at(4.0);
  EXPECT_GE(low, mid);
  EXPECT_GE(mid + 1e-6, high);
}

TEST(BerBlock, StopsAtErrorTarget) {
  const QcLdpcBlockCode code(BaseMatrix({{4, 4}}), 50, 3);
  BerConfig config;
  config.ebn0_db = -2.0;
  config.min_errors = 10;
  config.max_codewords = 100000;
  const BerResult result = simulate_ber_block(code, config);
  EXPECT_GE(result.bit_errors, 10u);
  EXPECT_LT(result.codewords, 10u);  // low SNR: errors come fast
}

TEST(BerBlock, DeterministicBySeed) {
  const QcLdpcBlockCode code(BaseMatrix({{4, 4}}), 40, 3);
  BerConfig config;
  config.ebn0_db = 1.5;
  config.max_codewords = 10;
  config.min_errors = 1000000;
  config.seed = 77;
  const BerResult a = simulate_ber_block(code, config);
  const BerResult b = simulate_ber_block(code, config);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
}

TEST(BerWindow, HighSnrIsClean) {
  const LdpcConvolutionalCode code(EdgeSpreading::paper_example(), 20, 8,
                                   5);
  BerConfig config;
  config.ebn0_db = 8.0;
  config.max_codewords = 5;
  config.min_errors = 1000000;
  const BerResult result = simulate_ber_window(code, 4, config);
  EXPECT_EQ(result.bit_errors, 0u);
}

TEST(BerWindow, WindowSizeImprovesBer) {
  // Fig. 10's driving effect: larger W lowers BER at fixed Eb/N0.
  const LdpcConvolutionalCode code(EdgeSpreading::paper_example(), 25, 16,
                                   5);
  auto ber_at = [&](std::size_t w) {
    BerConfig config;
    config.ebn0_db = 2.2;
    config.max_codewords = 40;
    config.min_errors = 60;
    config.seed = 11;
    return simulate_ber_window(code, w, config).ber;
  };
  EXPECT_GT(ber_at(3), ber_at(8) * 0.999);
}

TEST(RequiredEbn0, FindsThresholdOfSyntheticCurve) {
  // Synthetic BER(ebn0) = 10^(-ebn0/2): target 1e-3 at exactly 6 dB.
  const auto simulate = [](double ebn0) {
    BerResult r;
    r.ber = std::pow(10.0, -ebn0 / 2.0);
    r.bit_errors = 100;
    r.bits = static_cast<std::size_t>(100.0 / r.ber);
    return r;
  };
  const double found = required_ebn0_db(simulate, 1e-3, 0.0, 10.0, 0.5);
  EXPECT_NEAR(found, 6.0, 0.05);
}

TEST(RequiredEbn0, ReturnsLoWhenAlreadyBelowTarget) {
  const auto simulate = [](double) {
    BerResult r;
    r.ber = 1e-9;
    r.bit_errors = 1;
    r.bits = 1000000000;
    return r;
  };
  EXPECT_DOUBLE_EQ(required_ebn0_db(simulate, 1e-3, 2.0, 10.0), 2.0);
}

TEST(RequiredEbn0, CensoredAtHiWhenUnreachable) {
  const auto simulate = [](double) {
    BerResult r;
    r.ber = 0.4;
    r.bit_errors = 400;
    r.bits = 1000;
    return r;
  };
  EXPECT_DOUBLE_EQ(required_ebn0_db(simulate, 1e-5, 0.0, 4.0), 4.0);
}

}  // namespace
}  // namespace wi::fec

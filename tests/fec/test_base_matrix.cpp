#include "wi/fec/base_matrix.hpp"

#include <gtest/gtest.h>

namespace wi::fec {
namespace {

TEST(BaseMatrix, InitialiserAndAccess) {
  const BaseMatrix b({{2, 2}, {1, 3}});
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_EQ(b.cols(), 2u);
  EXPECT_EQ(b.at(0, 0), 2);
  EXPECT_EQ(b.at(1, 1), 3);
  EXPECT_EQ(b.edge_count(), 8);
}

TEST(BaseMatrix, Degrees) {
  const BaseMatrix b({{4, 4}});
  EXPECT_EQ(b.row_degrees(), std::vector<int>{8});
  EXPECT_EQ(b.col_degrees(), (std::vector<int>{4, 4}));
}

TEST(BaseMatrix, AdditionAndEquality) {
  const BaseMatrix a({{1, 2}});
  const BaseMatrix b({{3, 0}});
  EXPECT_EQ(a + b, BaseMatrix({{4, 2}}));
  EXPECT_FALSE(a == b);
}

TEST(BaseMatrix, RejectsBadInput) {
  EXPECT_THROW(BaseMatrix({}), std::invalid_argument);
  EXPECT_THROW(BaseMatrix({{1, 2}, {3}}), std::invalid_argument);
  EXPECT_THROW(BaseMatrix({{-1}}), std::invalid_argument);
  EXPECT_THROW(BaseMatrix({{1}}) + BaseMatrix({{1, 2}}),
               std::invalid_argument);
}

TEST(EdgeSpreading, PaperExampleSatisfiesEq2) {
  // B0 = [2,2], B1 = B2 = [1,1] must sum to B = [4,4] (Eq. 2).
  const EdgeSpreading spreading = EdgeSpreading::paper_example();
  EXPECT_EQ(spreading.mcc(), 2u);
  EXPECT_EQ(spreading.nc(), 1u);
  EXPECT_EQ(spreading.nv(), 2u);
  EXPECT_EQ(spreading.total(), BaseMatrix({{4, 4}}));
  EXPECT_TRUE(spreading.is_valid_spreading_of(BaseMatrix({{4, 4}})));
  EXPECT_FALSE(spreading.is_valid_spreading_of(BaseMatrix({{4, 3}})));
}

TEST(EdgeSpreading, PreservesDegreeDistribution) {
  // A valid edge spreading keeps the protograph (4,8)-regular.
  const EdgeSpreading spreading = EdgeSpreading::paper_example();
  const BaseMatrix total = spreading.total();
  EXPECT_EQ(total.row_degrees(), std::vector<int>{8});
  EXPECT_EQ(total.col_degrees(), (std::vector<int>{4, 4}));
}

TEST(EdgeSpreading, RejectsMismatchedComponents) {
  EXPECT_THROW(EdgeSpreading({BaseMatrix({{1, 1}}), BaseMatrix({{1}})}),
               std::invalid_argument);
  EXPECT_THROW(EdgeSpreading({}), std::invalid_argument);
}

TEST(CoupledProtograph, Eq3Dimensions) {
  // B_[1,L] is ((L + mcc) nc) x (L nv)  (Eq. 3).
  const EdgeSpreading spreading = EdgeSpreading::paper_example();
  for (const std::size_t termination : {1u, 4u, 10u}) {
    const BaseMatrix coupled = spreading.coupled_protograph(termination);
    EXPECT_EQ(coupled.rows(), (termination + 2) * 1);
    EXPECT_EQ(coupled.cols(), termination * 2);
  }
}

TEST(CoupledProtograph, DiagonalBandStructure) {
  const EdgeSpreading spreading = EdgeSpreading::paper_example();
  const BaseMatrix coupled = spreading.coupled_protograph(5);
  for (std::size_t r = 0; r < coupled.rows(); ++r) {
    for (std::size_t t = 0; t < 5; ++t) {
      const int expected =
          (r >= t && r - t <= 2) ? spreading.component(r - t).at(0, 0) : 0;
      EXPECT_EQ(coupled.at(r, t * 2), expected) << "r=" << r << " t=" << t;
    }
  }
}

TEST(CoupledProtograph, InteriorColumnsKeepFullDegree) {
  // Away from termination every variable keeps degree 4; the first/last
  // check rows have reduced degree (the termination rate loss).
  const EdgeSpreading spreading = EdgeSpreading::paper_example();
  const BaseMatrix coupled = spreading.coupled_protograph(8);
  const auto col_deg = coupled.col_degrees();
  for (const int d : col_deg) EXPECT_EQ(d, 4);
  const auto row_deg = coupled.row_degrees();
  EXPECT_LT(row_deg.front(), 8);  // first check row: only B0 present
  EXPECT_LT(row_deg.back(), 8);   // last: only B_mcc
  EXPECT_EQ(row_deg[4], 8);       // interior: full (4,8)-regular
}

TEST(CoupledProtograph, RejectsZeroTermination) {
  EXPECT_THROW(EdgeSpreading::paper_example().coupled_protograph(0),
               std::invalid_argument);
}

}  // namespace
}  // namespace wi::fec

#include "wi/fec/bp_decoder.hpp"

#include <gtest/gtest.h>

#include "wi/common/rng.hpp"
#include "wi/fec/ldpc_code.hpp"

namespace wi::fec {
namespace {

/// Tiny Hamming-like H = [1 1 0 1; 0 1 1 1] used for hand-checkable cases.
SparseBinaryMatrix tiny_h() {
  SparseBinaryMatrix h(2, 4);
  h.insert(0, 0);
  h.insert(0, 1);
  h.insert(0, 3);
  h.insert(1, 1);
  h.insert(1, 2);
  h.insert(1, 3);
  return h;
}

TEST(BpDecoder, CleanLlrConvergesImmediately) {
  const SparseBinaryMatrix h = tiny_h();
  const BpDecoder decoder(h);
  // Codeword 0000 with strong LLRs.
  const BpResult result = decoder.decode({9.0, 9.0, 9.0, 9.0});
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 1);
  EXPECT_EQ(result.hard, (std::vector<std::uint8_t>{0, 0, 0, 0}));
}

TEST(BpDecoder, CorrectsSingleWeakBit) {
  const SparseBinaryMatrix h = tiny_h();
  const BpDecoder decoder(h);
  // Bit 0 slightly favours 1 but the checks pull it back to 0.
  const BpResult result = decoder.decode({-0.5, 6.0, 6.0, 6.0});
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.hard[0], 0);
}

TEST(BpDecoder, RespectsCheckParityTargets) {
  const SparseBinaryMatrix h = tiny_h();
  const BpDecoder decoder(h);
  // Target parity {1, 0}: check 0 must be odd. With bits 1..3 pinned to
  // zero, bit 0 must come out 1 even though its channel LLR is weak.
  const std::vector<std::uint8_t> parity = {1, 0};
  const BpResult result =
      decoder.decode({0.2, 9.0, 9.0, 9.0}, BpOptions{}, &parity);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.hard[0], 1);
  EXPECT_EQ(result.hard[1], 0);
}

TEST(BpDecoder, MinSumAlsoDecodes) {
  const QcLdpcBlockCode code(BaseMatrix({{4, 4}}), 60, 2);
  const BpDecoder decoder(code.parity_check());
  Rng rng(31);
  const double sigma = 0.6;
  std::vector<double> llr(code.block_length());
  for (auto& v : llr) {
    v = 2.0 / (sigma * sigma) * (1.0 + sigma * rng.gaussian());
  }
  BpOptions options;
  options.min_sum = true;
  const BpResult result = decoder.decode(llr, options);
  EXPECT_TRUE(result.converged);
  for (const auto bit : result.hard) EXPECT_EQ(bit, 0);
}

TEST(BpDecoder, SumProductCorrectsModerateNoise) {
  const QcLdpcBlockCode code(BaseMatrix({{4, 4}}), 100, 7);
  const BpDecoder decoder(code.parity_check());
  Rng rng(32);
  const double sigma = 0.75;  // ~2.5 dB Eb/N0 at rate 1/2
  std::vector<double> llr(code.block_length());
  int channel_errors = 0;
  for (auto& v : llr) {
    const double y = 1.0 + sigma * rng.gaussian();
    if (y < 0.0) ++channel_errors;
    v = 2.0 / (sigma * sigma) * y;
  }
  ASSERT_GT(channel_errors, 0);  // the channel actually flipped bits
  const BpResult result = decoder.decode(llr);
  int residual = 0;
  for (const auto bit : result.hard) residual += bit;
  EXPECT_LT(residual, channel_errors);
}

TEST(BpDecoder, IterationCapRespected) {
  const SparseBinaryMatrix h = tiny_h();
  const BpDecoder decoder(h);
  BpOptions options;
  options.max_iterations = 3;
  options.early_stop = false;
  const BpResult result = decoder.decode({1.0, -1.0, 1.0, -1.0}, options);
  EXPECT_EQ(result.iterations, 3);
}

TEST(BpDecoder, PosteriorsSharpenChannelLlrs) {
  const SparseBinaryMatrix h = tiny_h();
  const BpDecoder decoder(h);
  const BpResult result = decoder.decode({2.0, 2.0, 2.0, 2.0});
  for (std::size_t v = 0; v < 4; ++v) {
    EXPECT_GT(result.llr_out[v], 2.0);  // checks add confidence
  }
}

TEST(BpDecoder, RejectsBadInputSizes) {
  const BpDecoder decoder(tiny_h());
  EXPECT_THROW(decoder.decode({1.0, 2.0}), std::invalid_argument);
  const std::vector<std::uint8_t> bad_parity = {0};
  EXPECT_THROW(decoder.decode({1, 1, 1, 1}, BpOptions{}, &bad_parity),
               std::invalid_argument);
}

TEST(BpDecoder, MinSumScaleAffectsMagnitudesOnly) {
  const SparseBinaryMatrix h = tiny_h();
  const BpDecoder decoder(h);
  BpOptions full;
  full.min_sum = true;
  full.min_sum_scale = 1.0;
  BpOptions scaled;
  scaled.min_sum = true;
  scaled.min_sum_scale = 0.5;
  const BpResult a = decoder.decode({3.0, 3.0, 3.0, 3.0}, full);
  const BpResult b = decoder.decode({3.0, 3.0, 3.0, 3.0}, scaled);
  EXPECT_EQ(a.hard, b.hard);
  EXPECT_GT(a.llr_out[0], b.llr_out[0]);
}

}  // namespace
}  // namespace wi::fec

/// Consistency of the window decoder against full-codeword BP: with the
/// window covering the whole terminated code, the two must agree; with
/// smaller windows the degradation must stay bounded at moderate noise.

#include <gtest/gtest.h>

#include "wi/common/rng.hpp"
#include "wi/fec/ber.hpp"

namespace wi::fec {
namespace {

std::vector<double> noisy_all_zero_llr(std::size_t n, double sigma,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> llr(n);
  for (auto& v : llr) {
    v = 2.0 / (sigma * sigma) * (1.0 + sigma * rng.gaussian());
  }
  return llr;
}

TEST(WindowVsFullBp, FullWindowMatchesFullBp) {
  const LdpcConvolutionalCode code(EdgeSpreading::paper_example(), 20, 8,
                                   31);
  const auto llr = noisy_all_zero_llr(code.codeword_length(), 0.65, 4);

  const BpDecoder full(code.parity_check());
  std::vector<double> full_llr = llr;
  // The full H has (L+mcc)*N check rows; the window decoder sees the
  // same matrix when W >= L, so decisions must match when both
  // converge.
  const BpResult bp = full.decode(full_llr);
  const WindowDecoder window(code, 100);  // clamps to L: one window
  const auto wd = window.decode(llr);
  ASSERT_TRUE(bp.converged);
  EXPECT_EQ(wd.hard, bp.hard);
  EXPECT_EQ(wd.windows_run, 1u);
}

class WindowSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WindowSizeSweep, ResidualErrorsBounded) {
  // Every admissible window size decodes a moderately noisy channel to
  // (near) zero errors at 4 dB-equivalent noise.
  const LdpcConvolutionalCode code(EdgeSpreading::paper_example(), 20, 10,
                                   32);
  const double sigma = 0.63;  // ~4 dB Eb/N0 at R = 1/2
  const auto llr = noisy_all_zero_llr(code.codeword_length(), sigma, 5);
  const WindowDecoder decoder(code, GetParam());
  const auto result = decoder.decode(llr);
  std::size_t errors = 0;
  for (const auto bit : result.hard) errors += bit;
  EXPECT_LE(errors, 2u) << "W=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSizeSweep,
                         ::testing::Values(3, 4, 5, 6, 8, 10));

TEST(WindowVsFullBp, WindowLatencyIsTheOnlyDifferenceKnob) {
  // Same code object serves every window size (encoder untouched): the
  // paper's decoder-side flexibility.
  const LdpcConvolutionalCode code(EdgeSpreading::paper_example(), 25, 12,
                                   33);
  const WindowDecoder w3(code, 3);
  const WindowDecoder w8(code, 8);
  EXPECT_LT(w3.structural_latency_bits(), w8.structural_latency_bits());
  // Both decode the same (clean) word.
  const std::vector<double> llr(code.codeword_length(), 6.0);
  EXPECT_EQ(w3.decode(llr).hard, w8.decode(llr).hard);
}

}  // namespace
}  // namespace wi::fec

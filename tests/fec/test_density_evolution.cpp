#include "wi/fec/density_evolution.hpp"

#include <gtest/gtest.h>

namespace wi::fec {
namespace {

TEST(DensityEvolution, ConvergesBelowThreshold) {
  const BaseMatrix block({{4, 4}});
  const auto result = evolve_bec(block, 0.30);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.residual_erasure, 1e-9);
}

TEST(DensityEvolution, FailsAboveThreshold) {
  const BaseMatrix block({{4, 4}});
  const auto result = evolve_bec(block, 0.45);
  EXPECT_FALSE(result.converged);
  EXPECT_GT(result.residual_erasure, 0.05);
}

TEST(DensityEvolution, EpsilonZeroTrivial) {
  const auto result = evolve_bec(BaseMatrix({{4, 4}}), 0.0);
  EXPECT_TRUE(result.converged);
}

TEST(DensityEvolution, BlockThresholdMatchesLiterature) {
  // (4,8)-regular BEC BP threshold: eps* ~ 0.3834 (Richardson/Urbanke).
  const double threshold = bec_threshold(BaseMatrix({{4, 4}}), 1e-4);
  EXPECT_NEAR(threshold, 0.3834, 0.002);
}

TEST(DensityEvolution, ThresholdOf36Regular) {
  // (3,6)-regular: eps* ~ 0.4294 — a second literature anchor.
  const double threshold = bec_threshold(BaseMatrix({{3, 3}}), 1e-4);
  EXPECT_NEAR(threshold, 0.4294, 0.002);
}

TEST(ThresholdSaturation, CoupledBeatsBlock) {
  // The theory behind Fig. 10: the terminated coupled ensemble decodes
  // beyond the block BP threshold, approaching the MAP threshold
  // (~0.4977 for (4,8)) as L grows.
  const double block = bec_threshold(BaseMatrix({{4, 4}}), 1e-3);
  const double coupled =
      coupled_bec_threshold(EdgeSpreading::paper_example(), 30, 1e-3);
  EXPECT_GT(coupled, block + 0.05);
  EXPECT_NEAR(coupled, 0.4977, 0.02);
}

TEST(ThresholdSaturation, ImprovesWithTermination) {
  // Longer chains cannot have a lower threshold (within tolerance) —
  // and even short chains already beat the block ensemble.
  const EdgeSpreading spreading = EdgeSpreading::paper_example();
  const double l10 = coupled_bec_threshold(spreading, 10, 1e-3);
  const double l30 = coupled_bec_threshold(spreading, 30, 1e-3);
  EXPECT_GE(l30, l10 - 5e-3);
  EXPECT_GT(l10, bec_threshold(BaseMatrix({{4, 4}}), 1e-3));
}

TEST(DensityEvolution, IterationBudgetRespected) {
  DensityEvolutionOptions options;
  options.max_iterations = 5;
  options.stall_delta = 0.0;  // disable the stall early-out
  const auto result = evolve_bec(BaseMatrix({{4, 4}}), 0.383, options);
  EXPECT_LE(result.iterations, 5u);
}

}  // namespace
}  // namespace wi::fec

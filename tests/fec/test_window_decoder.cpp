#include "wi/fec/window_decoder.hpp"

#include <gtest/gtest.h>

#include "wi/common/rng.hpp"
#include "wi/fec/encoder.hpp"

namespace wi::fec {
namespace {

LdpcConvolutionalCode make_code(std::size_t lifting = 20,
                                std::size_t termination = 10) {
  return LdpcConvolutionalCode(EdgeSpreading::paper_example(), lifting,
                               termination, 13);
}

TEST(WindowDecoder, RejectsTooSmallWindow) {
  const auto code = make_code();
  // W must be at least mcc + 1 = 3.
  EXPECT_THROW(WindowDecoder(code, 2), std::invalid_argument);
  EXPECT_NO_THROW(WindowDecoder(code, 3));
}

TEST(WindowDecoder, StructuralLatencyEq4) {
  const auto code = make_code(40, 20);
  EXPECT_DOUBLE_EQ(WindowDecoder(code, 5).structural_latency_bits(), 200.0);
  EXPECT_DOUBLE_EQ(WindowDecoder(code, 3).structural_latency_bits(), 120.0);
  // Latency independent of L (the paper's remark on Eq. 4).
  const auto longer = make_code(40, 60);
  EXPECT_DOUBLE_EQ(WindowDecoder(longer, 5).structural_latency_bits(),
                   200.0);
}

TEST(WindowDecoder, CleanChannelDecodesToZero) {
  const auto code = make_code();
  const WindowDecoder decoder(code, 4);
  const std::vector<double> llr(code.codeword_length(), 8.0);
  const WindowDecodeResult result = decoder.decode(llr);
  for (const auto bit : result.hard) EXPECT_EQ(bit, 0);
  EXPECT_EQ(result.unconverged, 0u);
}

TEST(WindowDecoder, DecodesEncodedCodeword) {
  // Full loop: encode a random message, transmit noiselessly, window
  // decode, compare.
  const auto code = make_code(15, 8);
  const GaussianEncoder encoder(code.parity_check());
  Rng rng(51);
  std::vector<std::uint8_t> info(encoder.info_length());
  for (auto& b : info) b = static_cast<std::uint8_t>(rng.uniform_int(2));
  const auto codeword = encoder.encode(info);
  std::vector<double> llr(codeword.size());
  for (std::size_t i = 0; i < codeword.size(); ++i) {
    llr[i] = codeword[i] ? -7.0 : 7.0;
  }
  const WindowDecoder decoder(code, 4);
  const WindowDecodeResult result = decoder.decode(llr);
  EXPECT_EQ(result.hard, codeword);
}

TEST(WindowDecoder, CorrectsNoise) {
  const auto code = make_code(25, 12);
  const WindowDecoder decoder(code, 6);
  Rng rng(52);
  const double sigma = 0.7;  // ~3.1 dB Eb/N0 at R=1/2
  std::vector<double> llr(code.codeword_length());
  std::size_t channel_errors = 0;
  for (auto& v : llr) {
    const double y = 1.0 + sigma * rng.gaussian();
    if (y < 0.0) ++channel_errors;
    v = 2.0 / (sigma * sigma) * y;
  }
  ASSERT_GT(channel_errors, 10u);
  const WindowDecodeResult result = decoder.decode(llr);
  std::size_t residual = 0;
  for (const auto bit : result.hard) residual += bit;
  EXPECT_LT(residual, channel_errors / 2);
}

TEST(WindowDecoder, LargerWindowNotWorse) {
  // Bigger W sees more context: at a fixed noisy channel its residual
  // error count should not be (much) worse. Compare W=3 vs W=8.
  const auto code = make_code(25, 12);
  Rng rng(53);
  const double sigma = 0.72;
  std::vector<double> llr(code.codeword_length());
  for (auto& v : llr) {
    v = 2.0 / (sigma * sigma) * (1.0 + sigma * rng.gaussian());
  }
  auto residual = [&](std::size_t w) {
    const WindowDecoder decoder(code, w);
    const auto result = decoder.decode(llr);
    std::size_t count = 0;
    for (const auto bit : result.hard) count += bit;
    return count;
  };
  EXPECT_LE(residual(8), residual(3) + 2);
}

TEST(WindowDecoder, WindowCountMatchesTermination) {
  const auto code = make_code(15, 9);
  const WindowDecoder decoder(code, 4);
  const std::vector<double> llr(code.codeword_length(), 5.0);
  const auto result = decoder.decode(llr);
  // Sliding stops early when the final window covers the tail.
  EXPECT_LE(result.windows_run, 9u);
  EXPECT_GE(result.windows_run, 6u);
}

TEST(WindowDecoder, OversizedWindowClampsToFullCode) {
  const auto code = make_code(15, 6);
  const WindowDecoder decoder(code, 50);
  const std::vector<double> llr(code.codeword_length(), 5.0);
  const auto result = decoder.decode(llr);
  EXPECT_EQ(result.windows_run, 1u);  // whole code in one window
  for (const auto bit : result.hard) EXPECT_EQ(bit, 0);
}

TEST(WindowDecoder, RejectsWrongLlrLength) {
  const auto code = make_code();
  const WindowDecoder decoder(code, 4);
  EXPECT_THROW(decoder.decode(std::vector<double>(10, 1.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace wi::fec

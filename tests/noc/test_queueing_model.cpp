#include "wi/noc/queueing_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wi::noc {
namespace {

QueueingModel make_model(const Topology& t) {
  static const DimensionOrderRouting routing;
  return QueueingModel(t, routing, TrafficPattern::uniform(t.module_count()));
}

TEST(QueueingModel, Fig8aZeroLoadAnchors) {
  // Paper: 13 / 7 / 10 cycles at low traffic for 2D / star / 3D.
  EXPECT_NEAR(make_model(Topology::mesh_2d(8, 8)).zero_load_latency_cycles(),
              13.0, 0.75);
  EXPECT_NEAR(
      make_model(Topology::star_mesh(4, 4, 4)).zero_load_latency_cycles(),
      7.0, 0.75);
  EXPECT_NEAR(
      make_model(Topology::mesh_3d(4, 4, 4)).zero_load_latency_cycles(),
      10.0, 0.75);
}

TEST(QueueingModel, Fig8aSaturationOrdering) {
  // Paper: 0.41 / 0.19 / 0.75 — 3D mesh far above 2D, star-mesh lowest.
  const double sat_2d = make_model(Topology::mesh_2d(8, 8)).saturation_rate();
  const double sat_star =
      make_model(Topology::star_mesh(4, 4, 4)).saturation_rate();
  const double sat_3d =
      make_model(Topology::mesh_3d(4, 4, 4)).saturation_rate();
  EXPECT_NEAR(sat_2d, 0.41, 0.03);
  EXPECT_NEAR(sat_star, 0.19, 0.03);
  EXPECT_GT(sat_3d, 0.65);
  EXPECT_GT(sat_3d, sat_2d);
  EXPECT_GT(sat_2d, sat_star);
}

TEST(QueueingModel, LatencyIncreasesWithLoad) {
  const QueueingModel model = make_model(Topology::mesh_2d(8, 8));
  double prev = 0.0;
  for (const double rate : {0.01, 0.1, 0.2, 0.3, 0.38}) {
    const auto perf = model.evaluate(rate);
    ASSERT_FALSE(perf.saturated) << "rate " << rate;
    EXPECT_GT(perf.mean_latency_cycles, prev);
    prev = perf.mean_latency_cycles;
  }
}

TEST(QueueingModel, SaturatedAboveCapacity) {
  const QueueingModel model = make_model(Topology::mesh_2d(8, 8));
  const double sat = model.saturation_rate();
  const auto perf = model.evaluate(sat * 1.05);
  EXPECT_TRUE(perf.saturated);
  EXPECT_TRUE(std::isinf(perf.mean_latency_cycles));
}

TEST(QueueingModel, MaxChannelLoadScalesLinearly) {
  const QueueingModel model = make_model(Topology::mesh_3d(4, 4, 4));
  const double load1 = model.evaluate(0.1).max_channel_load;
  const double load2 = model.evaluate(0.2).max_channel_load;
  EXPECT_NEAR(load2, 2.0 * load1, 1e-9);
}

TEST(QueueingModel, SweepMatchesEvaluate) {
  const QueueingModel model = make_model(Topology::mesh_2d(4, 4));
  const auto points = model.sweep({0.05, 0.1, 0.2});
  ASSERT_EQ(points.size(), 3u);
  for (const auto& p : points) {
    const auto perf = model.evaluate(p.injection_rate);
    EXPECT_DOUBLE_EQ(p.latency_cycles, perf.mean_latency_cycles);
    EXPECT_EQ(p.saturated, perf.saturated);
  }
}

TEST(QueueingModel, RouterDelayScalesZeroLoad) {
  const Topology t = Topology::mesh_2d(4, 4);
  const DimensionOrderRouting routing;
  const TrafficPattern traffic = TrafficPattern::uniform(16);
  QueueingModelParams fast;
  fast.router_delay_cycles = 1.0;
  QueueingModelParams slow;
  slow.router_delay_cycles = 3.0;
  const QueueingModel model_fast(t, routing, traffic, fast);
  const QueueingModel model_slow(t, routing, traffic, slow);
  EXPECT_NEAR(model_slow.zero_load_latency_cycles() /
                  model_fast.zero_load_latency_cycles(),
              3.0, 1e-9);
}

TEST(QueueingModel, PacketLengthAddsSerialization) {
  const Topology t = Topology::mesh_2d(4, 4);
  const DimensionOrderRouting routing;
  const TrafficPattern traffic = TrafficPattern::uniform(16);
  QueueingModelParams single;
  QueueingModelParams four;
  four.packet_length_flits = 4.0;
  const QueueingModel m1(t, routing, traffic, single);
  const QueueingModel m4(t, routing, traffic, four);
  EXPECT_NEAR(m4.zero_load_latency_cycles() - m1.zero_load_latency_cycles(),
              3.0, 1e-9);
  // Longer packets consume channel capacity: saturation drops 4x.
  EXPECT_NEAR(m1.saturation_rate() / m4.saturation_rate(), 4.0, 1e-9);
}

TEST(QueueingModel, HigherBandwidthChannelsRaiseCapacity) {
  // Same topology, vertical links at 2x bandwidth: capacity improves
  // when verticals are the bottleneck.
  const Topology base = Topology::mesh_3d(2, 2, 4);
  const Topology boosted = Topology::partial_vertical_mesh_3d(2, 2, 4, 1,
                                                              2.0);
  const DimensionOrderRouting routing;
  const TrafficPattern traffic = TrafficPattern::uniform(16);
  const QueueingModel m_base(base, routing, traffic);
  const QueueingModel m_boost(boosted, routing, traffic);
  EXPECT_GT(m_boost.saturation_rate(), m_base.saturation_rate());
}

TEST(QueueingModel, RejectsBadInput) {
  const Topology t = Topology::mesh_2d(4, 4);
  const DimensionOrderRouting routing;
  EXPECT_THROW(QueueingModel(t, routing, TrafficPattern::uniform(8)),
               std::invalid_argument);
  const QueueingModel model = make_model(t);
  EXPECT_THROW((void)model.evaluate(-0.1), std::invalid_argument);
}

/// Dense and implicit builds of the same pattern must agree: the
/// aggregate evaluation regroups the identical per-path sum by channel
/// (and uniform/hotspot loads come from the closed-form pair counts),
/// so only float summation order differs — compare with a relative
/// tolerance, not exact equality.
void expect_models_agree(const Topology& t, const TrafficPattern& dense,
                         const TrafficPattern& implicit) {
  const DimensionOrderRouting routing;
  const QueueingModel a(t, routing, dense);
  const QueueingModel b(t, routing, implicit);
  EXPECT_NEAR(b.zero_load_latency_cycles() / a.zero_load_latency_cycles(),
              1.0, 1e-9);
  EXPECT_NEAR(b.saturation_rate() / a.saturation_rate(), 1.0, 1e-9);
  const double rate = 0.8 * a.saturation_rate();
  const auto pa = a.evaluate(rate);
  const auto pb = b.evaluate(rate);
  EXPECT_NEAR(pb.mean_latency_cycles / pa.mean_latency_cycles, 1.0, 1e-9);
  EXPECT_NEAR(pb.max_channel_load / pa.max_channel_load, 1.0, 1e-9);
}

TEST(QueueingModel, ImplicitUniformMatchesDenseClosedForm) {
  // Regular meshes take the closed-form pair-count path.
  expect_models_agree(Topology::mesh_2d(8, 8), TrafficPattern::uniform(64),
                      TrafficPattern::implicit_uniform(64));
  expect_models_agree(Topology::mesh_3d(4, 4, 4),
                      TrafficPattern::uniform(64),
                      TrafficPattern::implicit_uniform(64));
  // Concentrated mesh: 4 modules per router, still closed-form
  // eligible (contiguous module attachment).
  expect_models_agree(Topology::star_mesh(4, 4, 4),
                      TrafficPattern::uniform(64),
                      TrafficPattern::implicit_uniform(64));
}

TEST(QueueingModel, ImplicitHotspotMatchesDense) {
  expect_models_agree(Topology::mesh_2d(8, 8),
                      TrafficPattern::hotspot(64, 27, 0.3),
                      TrafficPattern::implicit_hotspot(64, 27, 0.3));
  expect_models_agree(Topology::star_mesh(4, 4, 4),
                      TrafficPattern::hotspot(64, 11, 0.2),
                      TrafficPattern::implicit_hotspot(64, 11, 0.2));
}

TEST(QueueingModel, ImplicitPermutationsMatchDense) {
  expect_models_agree(Topology::mesh_2d(8, 8),
                      TrafficPattern::transpose(64),
                      TrafficPattern::implicit_transpose(64));
  expect_models_agree(Topology::mesh_2d(8, 8),
                      TrafficPattern::bit_complement(64),
                      TrafficPattern::implicit_bit_complement(64));
  expect_models_agree(Topology::mesh_2d(8, 8),
                      TrafficPattern::tornado(64, 8, 8, 1),
                      TrafficPattern::implicit_tornado(64, 8, 8, 1));
}

TEST(QueueingModel, ImplicitFallbackWithoutDimensionOrderRouting) {
  // The closed-form pair counts only apply under dimension-order
  // routing; shortest-path routing forces the aggregate-only pairwise
  // fallback — which still must match the dense walk.
  const Topology t = Topology::mesh_2d(4, 4);
  const ShortestPathRouting routing;
  const QueueingModel a(t, routing, TrafficPattern::uniform(16));
  const QueueingModel b(t, routing, TrafficPattern::implicit_uniform(16));
  EXPECT_NEAR(b.zero_load_latency_cycles() / a.zero_load_latency_cycles(),
              1.0, 1e-9);
  EXPECT_NEAR(b.saturation_rate() / a.saturation_rate(), 1.0, 1e-9);
  const auto pa = a.evaluate(0.1);
  const auto pb = b.evaluate(0.1);
  EXPECT_NEAR(pb.mean_latency_cycles / pa.mean_latency_cycles, 1.0, 1e-9);
}

TEST(QueueingModel, Fig8bGapWidensWithScale) {
  // The paper's 512-module observation.
  const double gap_64 =
      make_model(Topology::mesh_2d(8, 8)).zero_load_latency_cycles() -
      make_model(Topology::mesh_3d(4, 4, 4)).zero_load_latency_cycles();
  const double gap_512 =
      make_model(Topology::mesh_2d(32, 16)).zero_load_latency_cycles() -
      make_model(Topology::mesh_3d(8, 8, 8)).zero_load_latency_cycles();
  EXPECT_GT(gap_512, 3.0 * gap_64);
}

}  // namespace
}  // namespace wi::noc

#include "wi/noc/routing.hpp"

#include <gtest/gtest.h>

namespace wi::noc {
namespace {

TEST(DimensionOrder, XBeforeYBeforeZ) {
  const Topology t = Topology::mesh_3d(4, 4, 4);
  const DimensionOrderRouting routing;
  const Route route =
      routing.route(t, t.router_at(0, 0, 0), t.router_at(2, 1, 1));
  ASSERT_EQ(route.size(), 4u);
  // First hops move in x, then y, then z.
  EXPECT_EQ(t.coord(t.link(route[0]).dst).x, 1);
  EXPECT_EQ(t.coord(t.link(route[1]).dst).x, 2);
  EXPECT_EQ(t.coord(t.link(route[2]).dst).y, 1);
  EXPECT_EQ(t.coord(t.link(route[3]).dst).z, 1);
}

TEST(DimensionOrder, EmptyRouteForSelf) {
  const Topology t = Topology::mesh_2d(3, 3);
  const DimensionOrderRouting routing;
  EXPECT_TRUE(routing.route(t, 4, 4).empty());
}

TEST(DimensionOrder, HopCountIsManhattan) {
  const Topology t = Topology::mesh_3d(4, 4, 4);
  const DimensionOrderRouting routing;
  for (const auto& [src, dst] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {0, 63}, {5, 40}, {12, 12}, {3, 60}}) {
    const Coord a = t.coord(src);
    const Coord b = t.coord(dst);
    const std::size_t manhattan = static_cast<std::size_t>(
        std::abs(a.x - b.x) + std::abs(a.y - b.y) + std::abs(a.z - b.z));
    EXPECT_EQ(routing.route(t, src, dst).size(), manhattan);
  }
}

TEST(DimensionOrder, PathIsConnected) {
  const Topology t = Topology::mesh_2d(5, 5);
  const DimensionOrderRouting routing;
  const Route route = routing.route(t, 0, 24);
  std::size_t at = 0;
  for (const std::size_t l : route) {
    EXPECT_EQ(t.link(l).src, at);
    at = t.link(l).dst;
  }
  EXPECT_EQ(at, 24u);
}

TEST(ShortestPath, MatchesManhattanOnFullMesh) {
  const Topology t = Topology::mesh_2d(4, 4);
  const DimensionOrderRouting dor;
  const ShortestPathRouting spr;
  for (std::size_t s = 0; s < 16; ++s) {
    for (std::size_t d = 0; d < 16; ++d) {
      EXPECT_EQ(spr.route(t, s, d).size(), dor.route(t, s, d).size());
    }
  }
}

TEST(ShortestPath, RoutesAroundMissingVerticals) {
  // Partial vertical mesh: DOR would need a missing link; BFS finds a
  // detour.
  const Topology t = Topology::partial_vertical_mesh_3d(4, 4, 2, 4);
  const ShortestPathRouting routing;
  const std::size_t src = t.router_at(1, 0, 0);
  const std::size_t dst = t.router_at(1, 0, 1);
  const Route route = routing.route(t, src, dst);
  EXPECT_GE(route.size(), 1u);
  std::size_t at = src;
  for (const std::size_t l : route) {
    EXPECT_EQ(t.link(l).src, at);
    at = t.link(l).dst;
  }
  EXPECT_EQ(at, dst);
}

TEST(ShortestPath, ThrowsWhenUnreachable) {
  Topology t("disconnected", 2, 1, 1);
  t.add_router({0, 0, 0});
  t.add_router({1, 0, 0});
  const ShortestPathRouting routing;
  EXPECT_THROW(routing.route(t, 0, 1), std::runtime_error);
}

TEST(AverageHops, KnownMeshValues) {
  // k x k mesh uniform (excluding self): per-dim mean (k^2-1)/(3k)
  // over ordered pairs including same-coordinate; total = 2 dims.
  const Topology t = Topology::mesh_2d(8, 8);
  const DimensionOrderRouting routing;
  // 5.25 over all pairs incl. self-pairs; excluding self raises it a
  // touch: 5.25 * 64/63.
  EXPECT_NEAR(average_hop_count(t, routing), 5.25 * 64.0 / 63.0, 1e-9);
}

TEST(AverageHops, StarMeshLowerThan2dMesh) {
  const DimensionOrderRouting routing;
  EXPECT_LT(average_hop_count(Topology::star_mesh(4, 4, 4), routing),
            average_hop_count(Topology::mesh_2d(8, 8), routing));
}

TEST(Diameter, MeshCornerToCorner) {
  const DimensionOrderRouting routing;
  EXPECT_EQ(diameter(Topology::mesh_2d(8, 8), routing), 14u);
  EXPECT_EQ(diameter(Topology::mesh_3d(4, 4, 4), routing), 9u);
}

}  // namespace
}  // namespace wi::noc

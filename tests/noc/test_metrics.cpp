#include "wi/noc/metrics.hpp"

#include <gtest/gtest.h>

namespace wi::noc {
namespace {

TEST(Metrics, Mesh2dValues) {
  const DimensionOrderRouting routing;
  const TopologyMetrics m =
      compute_metrics(Topology::mesh_2d(8, 8), routing);
  EXPECT_EQ(m.router_count, 64u);
  EXPECT_EQ(m.diameter_hops, 14u);
  EXPECT_DOUBLE_EQ(m.bisection_bandwidth, 8.0);
  EXPECT_GT(m.average_hops, 5.0);
  EXPECT_LT(m.average_hops, 5.6);
}

TEST(Metrics, SecIVComparative3dAdvantages) {
  // The three Sec. IV claims for the 3D mesh vs the 2D mesh at equal
  // module count: fewer hops (low latency), higher bisection bandwidth
  // (throughput), shorter wires.
  const DimensionOrderRouting routing;
  const TopologyMetrics m2d =
      compute_metrics(Topology::mesh_2d(8, 8), routing);
  const TopologyMetrics m3d =
      compute_metrics(Topology::mesh_3d(4, 4, 4), routing);
  EXPECT_LT(m3d.average_hops, m2d.average_hops);
  EXPECT_GT(m3d.bisection_bandwidth, m2d.bisection_bandwidth);
  EXPECT_LT(m3d.total_wire_mm, m2d.total_wire_mm);
  EXPECT_LT(m3d.diameter_hops, m2d.diameter_hops);
}

TEST(Metrics, StarMeshTradeoff) {
  // Star-mesh: fewest hops but the weakest bisection (the paper's
  // latency-vs-throughput story).
  const DimensionOrderRouting routing;
  const TopologyMetrics star =
      compute_metrics(Topology::star_mesh(4, 4, 4), routing);
  const TopologyMetrics mesh =
      compute_metrics(Topology::mesh_2d(8, 8), routing);
  EXPECT_LT(star.average_hops, mesh.average_hops);
  EXPECT_LT(star.bisection_bandwidth, mesh.bisection_bandwidth);
}

TEST(Metrics, LinkAndRouterCounts) {
  const DimensionOrderRouting routing;
  const TopologyMetrics m =
      compute_metrics(Topology::mesh_3d(4, 4, 4), routing);
  EXPECT_EQ(m.router_count, 64u);
  EXPECT_EQ(m.link_count, Topology::mesh_3d(4, 4, 4).link_count());
}

}  // namespace
}  // namespace wi::noc

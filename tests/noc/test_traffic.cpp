#include "wi/noc/traffic.hpp"

#include <gtest/gtest.h>

namespace wi::noc {
namespace {

TEST(Traffic, UniformRowsNormalised) {
  const TrafficPattern t = TrafficPattern::uniform(8);
  for (std::size_t s = 0; s < 8; ++s) {
    double row = 0.0;
    for (std::size_t d = 0; d < 8; ++d) row += t.probability(s, d);
    EXPECT_NEAR(row, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(t.probability(s, s), 0.0);
  }
}

TEST(Traffic, UniformEquiprobable) {
  const TrafficPattern t = TrafficPattern::uniform(5);
  for (std::size_t s = 0; s < 5; ++s) {
    for (std::size_t d = 0; d < 5; ++d) {
      if (s != d) { EXPECT_NEAR(t.probability(s, d), 0.25, 1e-12); }
    }
  }
}

TEST(Traffic, TransposeIsPermutation) {
  const TrafficPattern t = TrafficPattern::transpose(8);
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_DOUBLE_EQ(t.probability(s, (s + 4) % 8), 1.0);
  }
}

TEST(Traffic, BitComplementReverses) {
  const TrafficPattern t = TrafficPattern::bit_complement(8);
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_DOUBLE_EQ(t.probability(s, 7 - s), 1.0);
  }
  EXPECT_THROW(TrafficPattern::bit_complement(6), std::invalid_argument);
}

TEST(Traffic, HotspotConcentrates) {
  const TrafficPattern t = TrafficPattern::hotspot(8, 3, 0.5);
  for (std::size_t s = 0; s < 8; ++s) {
    if (s == 3) continue;
    // Hotspot destination receives more than any other.
    for (std::size_t d = 0; d < 8; ++d) {
      if (d == 3 || d == s) continue;
      EXPECT_GT(t.probability(s, 3), t.probability(s, d));
    }
    double row = 0.0;
    for (std::size_t d = 0; d < 8; ++d) row += t.probability(s, d);
    EXPECT_NEAR(row, 1.0, 1e-12);
  }
}

TEST(Traffic, HotspotZeroFractionIsUniform) {
  const TrafficPattern hotspot = TrafficPattern::hotspot(6, 0, 0.0);
  const TrafficPattern uniform = TrafficPattern::uniform(6);
  for (std::size_t s = 0; s < 6; ++s) {
    for (std::size_t d = 0; d < 6; ++d) {
      EXPECT_NEAR(hotspot.probability(s, d), uniform.probability(s, d),
                  1e-12);
    }
  }
}

TEST(Traffic, RejectsBadArguments) {
  EXPECT_THROW(TrafficPattern::uniform(1), std::invalid_argument);
  EXPECT_THROW(TrafficPattern::hotspot(4, 9, 0.5), std::invalid_argument);
  EXPECT_THROW(TrafficPattern::hotspot(4, 0, 1.5), std::invalid_argument);
  EXPECT_THROW(TrafficPattern({1.0}, 2), std::invalid_argument);
  // A row of all zeros cannot be normalised.
  EXPECT_THROW(TrafficPattern({0.0, 0.0, 0.0, 0.0}, 2),
               std::invalid_argument);
  EXPECT_THROW(TrafficPattern({0.0, -1.0, 1.0, 0.0}, 2),
               std::invalid_argument);
}

TEST(Traffic, CustomMatrixNormalised) {
  // Rows are rescaled to sum to one.
  const TrafficPattern t({0.0, 2.0, 2.0, 0.0}, 2);
  EXPECT_DOUBLE_EQ(t.probability(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(t.probability(1, 0), 1.0);
}

}  // namespace
}  // namespace wi::noc

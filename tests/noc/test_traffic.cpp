#include "wi/noc/traffic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "wi/common/rng.hpp"
#include "wi/common/status.hpp"

namespace wi::noc {
namespace {

TEST(Traffic, UniformRowsNormalised) {
  const TrafficPattern t = TrafficPattern::uniform(8);
  for (std::size_t s = 0; s < 8; ++s) {
    double row = 0.0;
    for (std::size_t d = 0; d < 8; ++d) row += t.probability(s, d);
    EXPECT_NEAR(row, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(t.probability(s, s), 0.0);
  }
}

TEST(Traffic, UniformEquiprobable) {
  const TrafficPattern t = TrafficPattern::uniform(5);
  for (std::size_t s = 0; s < 5; ++s) {
    for (std::size_t d = 0; d < 5; ++d) {
      if (s != d) { EXPECT_NEAR(t.probability(s, d), 0.25, 1e-12); }
    }
  }
}

TEST(Traffic, TransposeIsPermutation) {
  const TrafficPattern t = TrafficPattern::transpose(8);
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_DOUBLE_EQ(t.probability(s, (s + 4) % 8), 1.0);
  }
}

TEST(Traffic, BitComplementReverses) {
  const TrafficPattern t = TrafficPattern::bit_complement(8);
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_DOUBLE_EQ(t.probability(s, 7 - s), 1.0);
  }
  EXPECT_THROW(TrafficPattern::bit_complement(6), StatusError);
}

TEST(Traffic, HotspotConcentrates) {
  const TrafficPattern t = TrafficPattern::hotspot(8, 3, 0.5);
  for (std::size_t s = 0; s < 8; ++s) {
    if (s == 3) continue;
    // Hotspot destination receives more than any other.
    for (std::size_t d = 0; d < 8; ++d) {
      if (d == 3 || d == s) continue;
      EXPECT_GT(t.probability(s, 3), t.probability(s, d));
    }
    double row = 0.0;
    for (std::size_t d = 0; d < 8; ++d) row += t.probability(s, d);
    EXPECT_NEAR(row, 1.0, 1e-12);
  }
}

TEST(Traffic, HotspotZeroFractionIsUniform) {
  const TrafficPattern hotspot = TrafficPattern::hotspot(6, 0, 0.0);
  const TrafficPattern uniform = TrafficPattern::uniform(6);
  for (std::size_t s = 0; s < 6; ++s) {
    for (std::size_t d = 0; d < 6; ++d) {
      EXPECT_NEAR(hotspot.probability(s, d), uniform.probability(s, d),
                  1e-12);
    }
  }
}

TEST(Traffic, TornadoShiftsHalfRing) {
  // 4x4 mesh: both dimensions shift by (4-1)/2 = 1.
  const TrafficPattern t = TrafficPattern::tornado(16, 4, 4, 1);
  for (std::size_t s = 0; s < 16; ++s) {
    const std::size_t x = s % 4;
    const std::size_t y = s / 4;
    const std::size_t expect = ((y + 1) % 4) * 4 + (x + 1) % 4;
    EXPECT_DOUBLE_EQ(t.probability(s, expect), 1.0);
    double row = 0.0;
    for (std::size_t d = 0; d < 16; ++d) row += t.probability(s, d);
    EXPECT_DOUBLE_EQ(row, 1.0);
  }
  // Degenerate meshes (every shift zero) are self-traffic: rejected.
  EXPECT_THROW(TrafficPattern::tornado(4, 2, 2, 1), StatusError);
  EXPECT_THROW(TrafficPattern::tornado(8, 2, 2, 2), StatusError);
  // Extents must multiply to the module count.
  EXPECT_THROW(TrafficPattern::tornado(16, 4, 3, 1), StatusError);
}

TEST(Traffic, RejectsBadArguments) {
  EXPECT_THROW(TrafficPattern::uniform(1), StatusError);
  EXPECT_THROW(TrafficPattern::hotspot(4, 9, 0.5), StatusError);
  EXPECT_THROW(TrafficPattern::hotspot(4, 0, 1.5), StatusError);
  EXPECT_THROW(TrafficPattern({1.0}, 2), StatusError);
  // A row of all zeros cannot be normalised.
  EXPECT_THROW(TrafficPattern({0.0, 0.0, 0.0, 0.0}, 2), StatusError);
  EXPECT_THROW(TrafficPattern({0.0, -1.0, 1.0, 0.0}, 2), StatusError);
}

TEST(Traffic, RejectsRowsNotSummingToOne) {
  // Pre-normalised input is required: a row summing to 2 used to be
  // silently rescaled, now it fails loudly at construction.
  try {
    TrafficPattern({0.0, 2.0, 2.0, 0.0}, 2);
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kInvalidSpec);
  }
  // Slight float noise within tolerance is accepted.
  EXPECT_NO_THROW(TrafficPattern({0.0, 1.0 + 5e-7, 1.0, 0.0}, 2));
  EXPECT_THROW(TrafficPattern({0.0, 1.0 + 5e-3, 1.0, 0.0}, 2), StatusError);
}

TEST(Traffic, RejectsNonFiniteEntries) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(TrafficPattern({0.0, nan, 1.0, 0.0}, 2), StatusError);
  EXPECT_THROW(TrafficPattern({0.0, inf, 1.0, 0.0}, 2), StatusError);
}

TEST(Traffic, CustomMatrixAccepted) {
  const TrafficPattern t({0.0, 1.0, 1.0, 0.0}, 2);
  EXPECT_DOUBLE_EQ(t.probability(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(t.probability(1, 0), 1.0);
  EXPECT_EQ(t.kind(), TrafficPatternKind::kDense);
  EXPECT_FALSE(t.implicit_form());
}

// --- implicit patterns ---

TEST(TrafficImplicit, ProbabilityMatchesDenseTwin) {
  struct Pair {
    TrafficPattern dense;
    TrafficPattern implicit;
  };
  const std::vector<Pair> pairs = {
      {TrafficPattern::uniform(12), TrafficPattern::implicit_uniform(12)},
      {TrafficPattern::transpose(9), TrafficPattern::implicit_transpose(9)},
      {TrafficPattern::bit_complement(16),
       TrafficPattern::implicit_bit_complement(16)},
      {TrafficPattern::hotspot(10, 4, 0.3),
       TrafficPattern::implicit_hotspot(10, 4, 0.3)},
      {TrafficPattern::tornado(12, 4, 3, 1),
       TrafficPattern::implicit_tornado(12, 4, 3, 1)},
  };
  for (const auto& [dense, implicit] : pairs) {
    ASSERT_TRUE(implicit.implicit_form());
    ASSERT_FALSE(dense.implicit_form());
    const std::size_t n = dense.modules();
    for (std::size_t s = 0; s < n; ++s) {
      double row = 0.0;
      for (std::size_t d = 0; d < n; ++d) {
        EXPECT_NEAR(implicit.probability(s, d), dense.probability(s, d),
                    1e-12)
            << "kind=" << static_cast<int>(implicit.kind()) << " s=" << s
            << " d=" << d;
        row += implicit.probability(s, d);
      }
      EXPECT_NEAR(row, 1.0, 1e-12);
    }
  }
}

TEST(TrafficImplicit, RejectsBadArguments) {
  EXPECT_THROW(TrafficPattern::implicit_uniform(1), StatusError);
  EXPECT_THROW(TrafficPattern::implicit_bit_complement(6), StatusError);
  EXPECT_THROW(TrafficPattern::implicit_hotspot(4, 9, 0.5), StatusError);
  EXPECT_THROW(TrafficPattern::implicit_hotspot(4, 0, -0.1), StatusError);
  EXPECT_THROW(TrafficPattern::implicit_tornado(4, 2, 2, 1), StatusError);
}

TEST(TrafficImplicit, PermutationSamplesAreDeterministic) {
  const TrafficPattern transpose = TrafficPattern::implicit_transpose(8);
  const TrafficPattern complement =
      TrafficPattern::implicit_bit_complement(8);
  const TrafficPattern tornado =
      TrafficPattern::implicit_tornado(27, 3, 3, 3);
  Rng rng(7);
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_EQ(transpose.sample(rng, s), (s + 4) % 8);
    EXPECT_EQ(transpose.permutation_target(s), (s + 4) % 8);
    EXPECT_EQ(complement.sample(rng, s), 7 - s);
  }
  for (std::size_t s = 0; s < 27; ++s) {
    const std::size_t x = s % 3;
    const std::size_t y = (s / 3) % 3;
    const std::size_t z = s / 9;
    const std::size_t expect =
        ((z + 1) % 3) * 9 + ((y + 1) % 3) * 3 + (x + 1) % 3;
    EXPECT_EQ(tornado.sample(rng, s), expect);
    EXPECT_EQ(tornado.permutation_target(s), expect);
  }
}

TEST(TrafficImplicit, UniformSampleMatchesDistribution) {
  constexpr std::size_t kModules = 6;
  constexpr std::size_t kDraws = 120000;
  const TrafficPattern t = TrafficPattern::implicit_uniform(kModules);
  Rng rng(42);
  for (std::size_t s = 0; s < kModules; ++s) {
    std::vector<std::size_t> counts(kModules, 0);
    for (std::size_t i = 0; i < kDraws; ++i) {
      const std::size_t d = t.sample(rng, s);
      ASSERT_LT(d, kModules);
      ASSERT_NE(d, s);
      ++counts[d];
    }
    for (std::size_t d = 0; d < kModules; ++d) {
      if (d == s) continue;
      const double freq =
          static_cast<double>(counts[d]) / static_cast<double>(kDraws);
      // Expected 1/5 = 0.2; 120k draws put 5 sigma well under 0.01.
      EXPECT_NEAR(freq, 0.2, 0.01) << "s=" << s << " d=" << d;
    }
  }
}

TEST(TrafficImplicit, HotspotSampleMass) {
  constexpr std::size_t kModules = 8;
  constexpr std::size_t kHot = 3;
  constexpr double kFraction = 0.4;
  constexpr std::size_t kDraws = 200000;
  const TrafficPattern t =
      TrafficPattern::implicit_hotspot(kModules, kHot, kFraction);
  Rng rng(99);
  std::size_t hot_hits = 0;
  std::vector<std::size_t> cold(kModules, 0);
  for (std::size_t i = 0; i < kDraws; ++i) {
    const std::size_t d = t.sample(rng, 0);
    ASSERT_LT(d, kModules);
    ASSERT_NE(d, 0u);
    if (d == kHot) {
      ++hot_hits;
    } else {
      ++cold[d];
    }
  }
  const double expect_hot = t.probability(0, kHot);  // f + (1-f)/7
  EXPECT_NEAR(static_cast<double>(hot_hits) / kDraws, expect_hot, 0.01);
  for (std::size_t d = 1; d < kModules; ++d) {
    if (d == kHot) continue;
    EXPECT_NEAR(static_cast<double>(cold[d]) / kDraws,
                (1.0 - kFraction) / 7.0, 0.01);
  }
  // From the hot module itself the pattern is plain uniform.
  std::vector<std::size_t> from_hot(kModules, 0);
  for (std::size_t i = 0; i < kDraws; ++i) ++from_hot[t.sample(rng, kHot)];
  for (std::size_t d = 0; d < kModules; ++d) {
    if (d == kHot) continue;
    EXPECT_NEAR(static_cast<double>(from_hot[d]) / kDraws, 1.0 / 7.0, 0.01);
  }
  EXPECT_EQ(from_hot[kHot], 0u);
}

TEST(TrafficImplicit, HotspotFullFractionAlwaysHitsHotspot) {
  const TrafficPattern t = TrafficPattern::implicit_hotspot(8, 5, 1.0);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(t.sample(rng, 2), 5u);
  }
}

TEST(TrafficImplicit, DenseSampleThrows) {
  const TrafficPattern dense = TrafficPattern::uniform(4);
  Rng rng(1);
  EXPECT_THROW((void)dense.sample(rng, 0), StatusError);
}

}  // namespace
}  // namespace wi::noc

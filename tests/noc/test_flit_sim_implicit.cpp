/// \file test_flit_sim_implicit.cpp
/// \brief Implicit traffic patterns and computed mesh routing inside the
///        DES cores: dense-vs-implicit differentials, computed-vs-dense
///        next-hop equivalence, and thread/partition bit-identity on an
///        analytic-pattern mesh.
///
/// The permutation patterns (transpose, bit-complement, tornado) sample
/// through the same one-raw-per-hit scheme dense CDF sampling uses and
/// produce the same destination, so dense and implicit runs must be
/// bit-identical. Uniform maps the 53-bit draw differently (integer
/// multiply-shift vs lower_bound on a cumulative-double row), so the
/// dense/implicit comparison there is statistical.

#include "wi/noc/flit_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "wi/noc/routing.hpp"

namespace wi::noc {
namespace {

FlitSimConfig base_config() {
  FlitSimConfig config;
  config.warmup_cycles = 500;
  config.measure_cycles = 3000;
  config.drain_cycles = 3000;
  return config;
}

void expect_identical(const FlitSimResult& a, const FlitSimResult& b) {
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_DOUBLE_EQ(a.mean_latency_cycles, b.mean_latency_cycles);
  EXPECT_DOUBLE_EQ(a.delivered_per_cycle, b.delivered_per_cycle);
  EXPECT_EQ(a.stable, b.stable);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.unreachable, b.unreachable);
}

/// Delegates to dimension-order routing but is not a
/// DimensionOrderRouting, so the event core's grid-mode detection
/// (a dynamic_cast) fails and it falls back to the dense next-hop
/// table. Comparing runs under the two routings pins the computed
/// next-hop against the dense table port by port.
class DisguisedDimensionOrder final : public Routing {
 public:
  [[nodiscard]] Route route(const Topology& topology, std::size_t src,
                            std::size_t dst) const override {
    return inner_.route(topology, src, dst);
  }
  [[nodiscard]] std::size_t first_hop(const Topology& topology,
                                      std::size_t src,
                                      std::size_t dst) const override {
    return inner_.first_hop(topology, src, dst);
  }

 private:
  DimensionOrderRouting inner_;
};

TEST(FlitSimImplicit, TransposeDenseVsImplicitBitIdentical) {
  const Topology t = Topology::mesh_2d(4, 4);
  const DimensionOrderRouting routing;
  const TrafficPattern dense = TrafficPattern::transpose(16);
  const TrafficPattern implicit = TrafficPattern::implicit_transpose(16);
  for (const FlitSimCore core : {FlitSimCore::kLegacy, FlitSimCore::kEvent}) {
    FlitSimConfig config = base_config();
    config.core = core;
    SCOPED_TRACE(testing::Message()
                 << "core=" << (core == FlitSimCore::kLegacy ? "legacy"
                                                            : "event"));
    const auto a = simulate_network(t, routing, dense, 0.1, config);
    const auto b = simulate_network(t, routing, implicit, 0.1, config);
    expect_identical(a, b);
    EXPECT_GT(a.delivered, 0u);
  }
}

TEST(FlitSimImplicit, TornadoDenseVsImplicitBitIdentical) {
  const Topology t = Topology::mesh_2d(5, 3);
  const DimensionOrderRouting routing;
  const TrafficPattern dense = TrafficPattern::tornado(15, 5, 3, 1);
  const TrafficPattern implicit =
      TrafficPattern::implicit_tornado(15, 5, 3, 1);
  for (const FlitSimCore core : {FlitSimCore::kLegacy, FlitSimCore::kEvent}) {
    FlitSimConfig config = base_config();
    config.core = core;
    SCOPED_TRACE(testing::Message()
                 << "core=" << (core == FlitSimCore::kLegacy ? "legacy"
                                                            : "event"));
    const auto a = simulate_network(t, routing, dense, 0.1, config);
    const auto b = simulate_network(t, routing, implicit, 0.1, config);
    expect_identical(a, b);
    EXPECT_GT(a.delivered, 0u);
  }
}

TEST(FlitSimImplicit, LegacyAndEventCoresAgreeOnImplicitPatterns) {
  // The cores share the injection stream contract (one Bernoulli raw
  // plus one sampler draw per hit), so implicit patterns must be
  // bit-identical across cores, exactly like dense ones.
  const Topology t = Topology::mesh_2d(4, 4);
  const DimensionOrderRouting routing;
  const TrafficPattern patterns[] = {
      TrafficPattern::implicit_uniform(16),
      TrafficPattern::implicit_transpose(16),
      TrafficPattern::implicit_hotspot(16, 5, 0.3),
  };
  for (const TrafficPattern& traffic : patterns) {
    FlitSimConfig legacy = base_config();
    legacy.core = FlitSimCore::kLegacy;
    FlitSimConfig event = base_config();
    event.core = FlitSimCore::kEvent;
    SCOPED_TRACE(testing::Message()
                 << "kind=" << static_cast<int>(traffic.kind()));
    const auto a = simulate_network(t, routing, traffic, 0.15, legacy);
    const auto b = simulate_network(t, routing, traffic, 0.15, event);
    expect_identical(a, b);
    EXPECT_GT(a.delivered, 0u);
  }
}

TEST(FlitSimImplicit, UniformDenseVsImplicitStatisticalAgreement) {
  // Same Bernoulli schedule, different destination draw mapping: the
  // injected count matches exactly and the steady-state statistics
  // agree within sampling noise.
  const Topology t = Topology::mesh_2d(8, 8);
  const DimensionOrderRouting routing;
  FlitSimConfig config = base_config();
  config.measure_cycles = 6000;
  config.core = FlitSimCore::kEvent;
  const auto a = simulate_network(t, routing, TrafficPattern::uniform(64),
                                  0.05, config);
  const auto b = simulate_network(
      t, routing, TrafficPattern::implicit_uniform(64), 0.05, config);
  EXPECT_EQ(a.injected, b.injected);  // identical Bernoulli stream
  EXPECT_TRUE(a.stable);
  EXPECT_TRUE(b.stable);
  EXPECT_NEAR(static_cast<double>(a.delivered),
              static_cast<double>(b.delivered),
              0.02 * static_cast<double>(a.delivered));
  EXPECT_NEAR(a.mean_latency_cycles, b.mean_latency_cycles,
              0.05 * a.mean_latency_cycles);
}

TEST(FlitSimImplicit, ComputedNextHopMatchesDenseTable) {
  // Grid mode (computed dimension-ordered next hops) against the dense
  // (router, dst) table the disguised routing forces, on a mesh with a
  // saturating load so secondary effects (arbitration order, buffer
  // backpressure) would expose any port mismatch.
  const DimensionOrderRouting dor;
  const DisguisedDimensionOrder disguised;
  const Topology meshes[] = {Topology::mesh_2d(5, 3),
                             Topology::mesh_3d(3, 3, 3)};
  for (const Topology& t : meshes) {
    const TrafficPattern traffic =
        TrafficPattern::implicit_uniform(t.module_count());
    FlitSimConfig config = base_config();
    config.core = FlitSimCore::kEvent;
    config.seed = 5;
    SCOPED_TRACE(testing::Message() << "routers=" << t.router_count());
    const auto grid = simulate_network(t, dor, traffic, 0.3, config);
    const auto dense = simulate_network(t, disguised, traffic, 0.3, config);
    expect_identical(grid, dense);
    EXPECT_GT(grid.delivered, 0u);
  }
}

TEST(FlitSimImplicit, ThreadAndPartitionSweepIsBitIdentical) {
  // Implicit hotspot pattern on an asymmetric mesh: the partitioned
  // staircase and the single-shard run must agree bit for bit, at 1
  // and 4 worker threads, partitions 1/2/4/8.
  const Topology t = Topology::mesh_2d(5, 3);
  const DimensionOrderRouting routing;
  const TrafficPattern traffic =
      TrafficPattern::implicit_hotspot(15, 7, 0.25);
  FlitSimConfig base = base_config();
  base.core = FlitSimCore::kEvent;
  base.seed = 9;
  const auto oracle = simulate_network(t, routing, traffic, 0.25, base);
  for (const std::size_t parts : {1u, 2u, 4u, 8u}) {
    for (const std::size_t threads : {1u, 4u}) {
      FlitSimConfig config = base;
      config.partitions = parts;
      config.threads = threads;
      SCOPED_TRACE(testing::Message()
                   << "partitions=" << parts << " threads=" << threads);
      const auto got = simulate_network(t, routing, traffic, 0.25, config);
      expect_identical(oracle, got);
    }
  }
  EXPECT_GT(oracle.delivered, 0u);
}

TEST(FlitSimImplicit, HotspotImplicitConcentratesTrafficAtHotModule) {
  // End-to-end sanity: under an implicit hotspot pattern the links
  // around the hot router carry visibly more load, so latency exceeds
  // the uniform run at the same injection rate.
  const Topology t = Topology::mesh_2d(8, 8);
  const DimensionOrderRouting routing;
  FlitSimConfig config = base_config();
  config.core = FlitSimCore::kEvent;
  const auto uniform = simulate_network(
      t, routing, TrafficPattern::implicit_uniform(64), 0.05, config);
  const auto hotspot = simulate_network(
      t, routing, TrafficPattern::implicit_hotspot(64, 27, 0.5), 0.05,
      config);
  EXPECT_TRUE(uniform.stable);
  EXPECT_GT(hotspot.mean_latency_cycles, uniform.mean_latency_cycles);
}

}  // namespace
}  // namespace wi::noc

#include <gtest/gtest.h>

#include "wi/noc/metrics.hpp"
#include "wi/noc/queueing_model.hpp"
#include "wi/noc/topology.hpp"

namespace wi::noc {
namespace {

TEST(StarMeshIrl, BandwidthOnMeshChannels) {
  const Topology t = Topology::star_mesh_irl(4, 4, 4, 3);
  EXPECT_EQ(t.module_count(), 64u);
  for (const auto& link : t.links()) {
    EXPECT_DOUBLE_EQ(link.bandwidth, 3.0);
  }
}

TEST(StarMeshIrl, OneIrlMatchesPlainStarMesh) {
  const Topology plain = Topology::star_mesh(4, 4, 4);
  const Topology irl1 = Topology::star_mesh_irl(4, 4, 4, 1);
  EXPECT_EQ(plain.link_count(), irl1.link_count());
  const DimensionOrderRouting routing;
  const QueueingModel a(plain, routing, TrafficPattern::uniform(64));
  const QueueingModel b(irl1, routing, TrafficPattern::uniform(64));
  EXPECT_DOUBLE_EQ(a.saturation_rate(), b.saturation_rate());
}

TEST(StarMeshIrl, ThroughputScalesWithIrls) {
  // The paper: "a common technique is to employ multiple inter-router
  // links" to fix the star-mesh's low bisection bandwidth.
  const DimensionOrderRouting routing;
  const TrafficPattern uniform = TrafficPattern::uniform(64);
  double prev = 0.0;
  for (const std::size_t irl : {1u, 2u, 4u}) {
    const Topology t = Topology::star_mesh_irl(4, 4, 4, irl);
    const QueueingModel model(t, routing, uniform);
    const double sat = model.saturation_rate();
    EXPECT_GT(sat, prev);
    prev = sat;
  }
  // 4 IRLs bring the star-mesh to roughly 3D-mesh capacity...
  EXPECT_GT(prev, 0.6);
}

TEST(StarMeshIrl, RejectsZeroIrl) {
  EXPECT_THROW(Topology::star_mesh_irl(4, 4, 4, 0), std::invalid_argument);
}

TEST(CrossbarArea, GrowsQuadraticallyWithIrls) {
  // ...but the router area explodes — the paper's stated drawback.
  const double area1 =
      total_router_crossbar_area(Topology::star_mesh_irl(4, 4, 4, 1));
  const double area4 =
      total_router_crossbar_area(Topology::star_mesh_irl(4, 4, 4, 4));
  EXPECT_GT(area4, 4.0 * area1);  // super-linear in the IRL count
}

TEST(CrossbarArea, KnownSmallTopology) {
  // 2x1 mesh, 1 module per router: each router has 1 in + 1 out port
  // from the single channel pair plus 2 module ports -> 4 ports each,
  // area = 2 * 16.
  const Topology t = Topology::mesh_2d(2, 1);
  EXPECT_DOUBLE_EQ(total_router_crossbar_area(t), 32.0);
}

TEST(CrossbarArea, ConcentrationCostsPorts) {
  // Same module count: the star-mesh routers carry 4 module ports each,
  // so per-router area is larger than the plain mesh's despite fewer
  // routers.
  const double mesh = total_router_crossbar_area(Topology::mesh_2d(8, 8));
  const double star =
      total_router_crossbar_area(Topology::star_mesh(4, 4, 4));
  const double mesh_per_router = mesh / 64.0;
  const double star_per_router = star / 16.0;
  EXPECT_GT(star_per_router, mesh_per_router);
}

}  // namespace
}  // namespace wi::noc

/// Fault-injecting DES tests: the six-argument simulate_network
/// overload. An empty schedule is bit-identical to the legacy path, a
/// scheduled link death reroutes traffic around it, router deaths take
/// their links with them, severed destinations surface as Status rows
/// (never throws), and the whole thing is deterministic per seed.

#include "wi/noc/flit_sim.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace wi::noc {
namespace {

FlitSimConfig quick_config() {
  FlitSimConfig config;
  config.warmup_cycles = 500;
  config.measure_cycles = 3000;
  config.drain_cycles = 4000;
  return config;
}

/// One scheduled failure, mid-warmup by default so the measured window
/// sees only the post-fault network.
[[nodiscard]] fault::FaultSchedule one_event(fault::FaultEvent::Kind kind,
                                             std::uint32_t index,
                                             std::uint64_t at_cycle = 250) {
  fault::FaultSchedule schedule;
  schedule.events.push_back({kind, index, at_cycle});
  return schedule;
}

TEST(FlitSimFaults, EmptyScheduleIsBitIdenticalToTheLegacyPath) {
  const Topology t = Topology::mesh_2d(4, 4);
  const DimensionOrderRouting routing;
  const TrafficPattern traffic = TrafficPattern::uniform(16);
  const auto legacy =
      simulate_network(t, routing, traffic, 0.1, quick_config());
  const auto faulted = simulate_network(t, routing, traffic, 0.1,
                                        quick_config(),
                                        fault::FaultSchedule{});
  EXPECT_DOUBLE_EQ(faulted.mean_latency_cycles,
                   legacy.mean_latency_cycles);
  EXPECT_DOUBLE_EQ(faulted.delivered_per_cycle,
                   legacy.delivered_per_cycle);
  EXPECT_EQ(faulted.delivered, legacy.delivered);
  EXPECT_EQ(faulted.injected, legacy.injected);
  EXPECT_EQ(faulted.dead_links, 0u);
  EXPECT_EQ(faulted.dead_routers, 0u);
  EXPECT_EQ(faulted.dropped, 0u);
  EXPECT_EQ(faulted.unreachable, 0u);
}

TEST(FlitSimFaults, SingleLinkDeathReroutesWithoutLosingDelivery) {
  // A 2D mesh is 2-connected between interior routers: killing one link
  // forces a detour but no destination becomes unreachable, so a
  // low-load run still delivers essentially everything.
  const Topology t = Topology::mesh_2d(4, 4);
  const DimensionOrderRouting routing;
  const auto result = simulate_network(
      t, routing, TrafficPattern::uniform(16), 0.05, quick_config(),
      one_event(fault::FaultEvent::Kind::kLink, 0));
  EXPECT_EQ(result.dead_links, 1u);
  EXPECT_EQ(result.dead_routers, 0u);
  EXPECT_EQ(result.unreachable, 0u);
  EXPECT_TRUE(result.route_failures.empty());
  EXPECT_GT(result.delivered, 0u);
  EXPECT_GE(result.delivered + result.dropped,
            result.injected * 99 / 100);
}

TEST(FlitSimFaults, RouterDeathTakesItsLinksAndStrandsItsModules) {
  // Killing router 0 in a 4x4 mesh severs its attached modules from the
  // rest: traffic to/from them is unreachable and reported as Status
  // rows, not thrown.
  const Topology t = Topology::mesh_2d(4, 4);
  const DimensionOrderRouting routing;
  const auto result = simulate_network(
      t, routing, TrafficPattern::uniform(16), 0.1, quick_config(),
      one_event(fault::FaultEvent::Kind::kRouter, 0));
  EXPECT_EQ(result.dead_routers, 1u);
  EXPECT_GE(result.dead_links, 2u) << "a corner router owns 2 mesh links";
  EXPECT_GT(result.unreachable, 0u);
  ASSERT_FALSE(result.route_failures.empty());
  for (const Status& failure : result.route_failures) {
    EXPECT_EQ(failure.code(), StatusCode::kUnreachableRoute)
        << failure.to_string();
  }
  // The surviving 15 routers keep talking.
  EXPECT_GT(result.delivered, 0u);
}

TEST(FlitSimFaults, FaultRunsAreDeterministicPerSeed) {
  const Topology t = Topology::mesh_2d(4, 4);
  const DimensionOrderRouting routing;
  const TrafficPattern traffic = TrafficPattern::uniform(16);
  const auto schedule = one_event(fault::FaultEvent::Kind::kLink, 3, 700);
  const auto first = simulate_network(t, routing, traffic, 0.1,
                                      quick_config(), schedule);
  const auto second = simulate_network(t, routing, traffic, 0.1,
                                       quick_config(), schedule);
  EXPECT_DOUBLE_EQ(first.mean_latency_cycles, second.mean_latency_cycles);
  EXPECT_EQ(first.delivered, second.delivered);
  EXPECT_EQ(first.dropped, second.dropped);
  EXPECT_EQ(first.unreachable, second.unreachable);
}

TEST(FlitSimFaults, LateFaultsHurtLessThanEarlyFaults) {
  // The same link death after the measurement window cannot touch the
  // measured statistics; mid-measurement it can only lower delivery.
  const Topology t = Topology::mesh_2d(4, 4);
  const DimensionOrderRouting routing;
  const TrafficPattern traffic = TrafficPattern::uniform(16);
  const FlitSimConfig config = quick_config();
  const std::uint64_t horizon =
      static_cast<std::uint64_t>(config.warmup_cycles +
                                 config.measure_cycles);

  const auto clean = simulate_network(t, routing, traffic, 0.1, config);
  const auto after_window = simulate_network(
      t, routing, traffic, 0.1, config,
      one_event(fault::FaultEvent::Kind::kRouter, 5,
                horizon + config.drain_cycles + 1000));
  EXPECT_EQ(after_window.injected, clean.injected)
      << "injection precedes the never-reached activation";
  EXPECT_EQ(after_window.dead_routers, 0u)
      << "an event beyond the simulated horizon never activates";
}

}  // namespace
}  // namespace wi::noc

/// \file test_flit_sim_event.cpp
/// \brief Event-wheel core specifics: wheel quiescence, degenerate
///        topologies, partition-count bit-identity, and fault
///        activations landing on partition window boundaries.
///
/// The golden tests pin the event core against the committed result
/// files; this file pins it against the legacy cycle-stepped oracle
/// (FlitSimCore::kLegacy) under configurations chosen to stress the
/// event-specific machinery: the calendar wheel, the shard staircase,
/// and the fault barriers.

#include "wi/noc/flit_sim.hpp"

#include <gtest/gtest.h>

#include <cstddef>

#include "wi/common/fault.hpp"

namespace wi::noc {
namespace {

FlitSimConfig base_config() {
  FlitSimConfig config;
  config.warmup_cycles = 500;
  config.measure_cycles = 3000;
  config.drain_cycles = 3000;
  return config;
}

/// Full-result equality: every statistic the goldens pin, plus the
/// fault accounting. turns_executed is diagnostics-only and excluded.
void expect_identical(const FlitSimResult& a, const FlitSimResult& b) {
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_DOUBLE_EQ(a.mean_latency_cycles, b.mean_latency_cycles);
  EXPECT_DOUBLE_EQ(a.delivered_per_cycle, b.delivered_per_cycle);
  EXPECT_EQ(a.stable, b.stable);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.unreachable, b.unreachable);
  EXPECT_EQ(a.dead_links, b.dead_links);
  EXPECT_EQ(a.dead_routers, b.dead_routers);
  ASSERT_EQ(a.route_failures.size(), b.route_failures.size());
  for (std::size_t i = 0; i < a.route_failures.size(); ++i) {
    EXPECT_EQ(a.route_failures[i].message(), b.route_failures[i].message());
  }
}

TEST(FlitSimEvent, ZeroTrafficTerminatesWithoutTurningARouter) {
  const Topology t = Topology::mesh_2d(4, 4);
  const DimensionOrderRouting routing;
  FlitSimConfig config = base_config();
  config.core = FlitSimCore::kEvent;
  const auto result = simulate_network(t, routing,
                                       TrafficPattern::uniform(16), 0.0,
                                       config);
  // No injections -> nothing is ever scheduled on the wheel, so the
  // run completes without executing a single router turn. The legacy
  // core would have visited 16 routers x 6500 cycles.
  EXPECT_EQ(result.turns_executed, 0u);
  EXPECT_EQ(result.injected, 0u);
  EXPECT_EQ(result.delivered, 0u);
  EXPECT_TRUE(result.stable);
}

TEST(FlitSimEvent, TurnsExecutedStaysFarBelowCycleSteppedWork) {
  const Topology t = Topology::mesh_2d(8, 8);
  const DimensionOrderRouting routing;
  FlitSimConfig config = base_config();
  config.core = FlitSimCore::kEvent;
  const auto result = simulate_network(t, routing,
                                       TrafficPattern::uniform(64), 0.01,
                                       config);
  EXPECT_GT(result.turns_executed, 0u);
  // The cycle-stepped equivalent is routers * total cycles. At 1%
  // load the wheel should skip the overwhelming majority of them.
  const std::uint64_t cycle_stepped =
      64ull * (config.warmup_cycles + config.measure_cycles +
               config.drain_cycles);
  EXPECT_LT(result.turns_executed, cycle_stepped / 2);
}

TEST(FlitSimEvent, SingleRouterMeshMatchesLegacy) {
  // One router carrying four modules, zero links: every flit ejects
  // where it is injected. Exercises the eject-at-source path and the
  // empty ring arrays.
  const Topology t = Topology::star_mesh(1, 1, 4);
  const DimensionOrderRouting routing;
  const TrafficPattern traffic = TrafficPattern::uniform(4);
  FlitSimConfig legacy = base_config();
  legacy.core = FlitSimCore::kLegacy;
  FlitSimConfig event = base_config();
  event.core = FlitSimCore::kEvent;
  const auto a = simulate_network(t, routing, traffic, 0.4, legacy);
  const auto b = simulate_network(t, routing, traffic, 0.4, event);
  expect_identical(a, b);
  EXPECT_GT(b.delivered, 0u);
}

TEST(FlitSimEvent, PartitionCountSweepIsBitIdentical) {
  // Asymmetric mesh so partitions cut the router range unevenly; a
  // saturating rate so shard boundaries carry real backpressure.
  const Topology t = Topology::mesh_2d(5, 3);
  const DimensionOrderRouting routing;
  const TrafficPattern traffic = TrafficPattern::uniform(15);
  FlitSimConfig legacy = base_config();
  legacy.core = FlitSimCore::kLegacy;
  legacy.seed = 7;
  const auto oracle = simulate_network(t, routing, traffic, 0.25, legacy);
  for (const std::size_t parts : {1u, 2u, 4u, 8u}) {
    FlitSimConfig event = legacy;
    event.core = FlitSimCore::kEvent;
    event.partitions = parts;
    event.threads = parts > 1 ? 4 : 1;
    SCOPED_TRACE(testing::Message() << "partitions=" << parts);
    const auto got = simulate_network(t, routing, traffic, 0.25, event);
    expect_identical(oracle, got);
  }
}

TEST(FlitSimEvent, FaultOnPartitionWindowBoundaryIsBitIdentical) {
  // The parallel mode advances shards in conservative windows of
  // `router_delay_cycles`; fault activations act as global barriers.
  // Place activations exactly on window multiples (and one off-by-one
  // neighbour) to pin the barrier handshake, and compare against the
  // sequential legacy oracle.
  const Topology t = Topology::mesh_2d(5, 3);
  const DimensionOrderRouting routing;
  const TrafficPattern traffic = TrafficPattern::uniform(15);
  FlitSimConfig legacy = base_config();
  legacy.core = FlitSimCore::kLegacy;
  legacy.seed = 11;
  const std::uint64_t delay =
      static_cast<std::uint64_t>(legacy.router_delay_cycles);
  ASSERT_GE(delay, 1u);
  fault::FaultSchedule faults;
  // Window-aligned link death, window-aligned router death, and a
  // misaligned one straddling the boundary.
  faults.events.push_back({fault::FaultEvent::Kind::kLink, 3, delay * 300});
  faults.events.push_back(
      {fault::FaultEvent::Kind::kRouter, 7, delay * 700});
  faults.events.push_back(
      {fault::FaultEvent::Kind::kLink, 9, delay * 900 + 1});
  const auto oracle =
      simulate_network(t, routing, traffic, 0.25, legacy, faults);
  for (const std::size_t parts : {2u, 4u, 8u}) {
    FlitSimConfig event = legacy;
    event.core = FlitSimCore::kEvent;
    event.partitions = parts;
    event.threads = 4;
    SCOPED_TRACE(testing::Message() << "partitions=" << parts);
    const auto got =
        simulate_network(t, routing, traffic, 0.25, event, faults);
    expect_identical(oracle, got);
  }
  EXPECT_GT(oracle.dead_links, 0u);
  EXPECT_GT(oracle.dead_routers, 0u);
}

TEST(FlitSimEvent, AutoFallsBackToLegacyBelowUnitDelay) {
  // kAuto must not hand a sub-cycle pipeline to the event wheel.
  const Topology t = Topology::mesh_2d(4, 4);
  const DimensionOrderRouting routing;
  FlitSimConfig config = base_config();
  config.router_delay_cycles = 0.0;
  config.core = FlitSimCore::kAuto;
  const auto result = simulate_network(t, routing,
                                       TrafficPattern::uniform(16), 0.1,
                                       config);
  EXPECT_GT(result.delivered, 0u);
  // The legacy core leaves the event-core diagnostic at zero.
  EXPECT_EQ(result.turns_executed, 0u);
}

}  // namespace
}  // namespace wi::noc

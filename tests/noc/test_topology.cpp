#include "wi/noc/topology.hpp"

#include <gtest/gtest.h>

namespace wi::noc {
namespace {

TEST(Topology, Mesh2dCounts) {
  const Topology t = Topology::mesh_2d(8, 8);
  EXPECT_EQ(t.router_count(), 64u);
  EXPECT_EQ(t.module_count(), 64u);
  // 2 * (kx-1)*ky + 2 * kx*(ky-1) directed links.
  EXPECT_EQ(t.link_count(), 2u * (7 * 8) + 2u * (8 * 7));
}

TEST(Topology, Mesh3dCounts) {
  const Topology t = Topology::mesh_3d(4, 4, 4);
  EXPECT_EQ(t.router_count(), 64u);
  EXPECT_EQ(t.module_count(), 64u);
  // 3 dimensions x 2 directions x 3*16 adjacent pairs per dim.
  EXPECT_EQ(t.link_count(), 3u * 2u * 48u);
}

TEST(Topology, StarMeshConcentration) {
  const Topology t = Topology::star_mesh(4, 4, 4);
  EXPECT_EQ(t.router_count(), 16u);
  EXPECT_EQ(t.module_count(), 64u);
  // Four modules share each router.
  for (std::size_t m = 0; m < 64; ++m) {
    EXPECT_EQ(t.module_router(m), m / 4);
  }
}

TEST(Topology, CiliatedMeshIs3dConcentrated) {
  const Topology t = Topology::ciliated_mesh_3d(4, 4, 2, 2);
  EXPECT_EQ(t.router_count(), 32u);
  EXPECT_EQ(t.module_count(), 64u);
}

TEST(Topology, RouterAtRoundTrips) {
  const Topology t = Topology::mesh_3d(4, 3, 2);
  for (int z = 0; z < 2; ++z) {
    for (int y = 0; y < 3; ++y) {
      for (int x = 0; x < 4; ++x) {
        const std::size_t r = t.router_at(x, y, z);
        EXPECT_EQ(t.coord(r).x, x);
        EXPECT_EQ(t.coord(r).y, y);
        EXPECT_EQ(t.coord(r).z, z);
      }
    }
  }
  EXPECT_THROW((void)t.router_at(4, 0, 0), std::out_of_range);
  EXPECT_THROW((void)t.router_at(0, 0, 2), std::out_of_range);
}

TEST(Topology, LinksAreBidirectionalPairs) {
  const Topology t = Topology::mesh_2d(3, 3);
  for (const auto& link : t.links()) {
    EXPECT_NE(t.find_link(link.dst, link.src), Topology::npos);
  }
}

TEST(Topology, FindLinkMissing) {
  const Topology t = Topology::mesh_2d(3, 3);
  // Non-adjacent routers have no direct link.
  EXPECT_EQ(t.find_link(t.router_at(0, 0, 0), t.router_at(2, 2, 0)),
            Topology::npos);
}

TEST(Topology, VerticalLinksTagged) {
  const Topology t = Topology::mesh_3d(2, 2, 2);
  std::size_t vertical = 0;
  for (const auto& link : t.links()) {
    if (link.vertical) ++vertical;
  }
  EXPECT_EQ(vertical, 2u * 4u);  // 4 vertical pairs, both directions
}

TEST(Topology, PartialVerticalMeshDropsLinks) {
  const Topology full = Topology::mesh_3d(4, 4, 4);
  const Topology sparse =
      Topology::partial_vertical_mesh_3d(4, 4, 4, 2, 2.0);
  std::size_t full_vertical = 0;
  std::size_t sparse_vertical = 0;
  for (const auto& link : full.links()) {
    if (link.vertical) ++full_vertical;
  }
  for (const auto& link : sparse.links()) {
    if (link.vertical) {
      ++sparse_vertical;
      EXPECT_DOUBLE_EQ(link.bandwidth, 2.0);
    }
  }
  EXPECT_LT(sparse_vertical, full_vertical);
  EXPECT_EQ(sparse.module_count(), full.module_count());
}

TEST(Topology, BisectionBandwidth) {
  // 8x8 mesh: 8 links cross the mid cut in one direction.
  EXPECT_DOUBLE_EQ(Topology::mesh_2d(8, 8).bisection_bandwidth(), 8.0);
  // 4x4x4: 16 links cross.
  EXPECT_DOUBLE_EQ(Topology::mesh_3d(4, 4, 4).bisection_bandwidth(), 16.0);
  // Star-mesh 4x4: 4 links.
  EXPECT_DOUBLE_EQ(Topology::star_mesh(4, 4, 4).bisection_bandwidth(), 4.0);
}

TEST(Topology, WireLength3dShorterThan2d) {
  // The Sec. IV "short wires" claim: same module count, less total wire.
  const double wire_2d = Topology::mesh_2d(8, 8).total_wire_length_mm();
  const double wire_3d = Topology::mesh_3d(4, 4, 4).total_wire_length_mm();
  EXPECT_LT(wire_3d, wire_2d);
}

TEST(Topology, ManualConstructionAndValidation) {
  Topology t("custom", 2, 1, 1);
  const std::size_t a = t.add_router({0, 0, 0});
  const std::size_t b = t.add_router({1, 0, 0});
  t.add_link({a, b, 1.0, 1.0, false});
  EXPECT_THROW(t.add_link({a, a, 1.0, 1.0, false}), std::invalid_argument);
  EXPECT_THROW(t.add_link({a, 5, 1.0, 1.0, false}), std::out_of_range);
  EXPECT_EQ(t.attach_module(a), 0u);
  EXPECT_THROW(t.attach_module(9), std::out_of_range);
}

TEST(Topology, BuildersRejectDegenerate) {
  EXPECT_THROW(Topology::star_mesh(4, 4, 0), std::invalid_argument);
  EXPECT_THROW(Topology::ciliated_mesh_3d(2, 2, 2, 0),
               std::invalid_argument);
  EXPECT_THROW(Topology::partial_vertical_mesh_3d(2, 2, 2, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace wi::noc

#include "wi/noc/mesh_grid.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "wi/noc/routing.hpp"
#include "wi/noc/topology.hpp"

namespace wi::noc {
namespace {

// The port MeshGrid computes must equal the port a dense table built
// from DimensionOrderRouting::first_hop would store: the link's
// position in out_links(src).
std::size_t dense_port(const Topology& t, const Routing& r, std::size_t src,
                       std::size_t dst) {
  const std::size_t link = r.first_hop(t, src, dst);
  const auto& out = t.out_links(src);
  for (std::size_t p = 0; p < out.size(); ++p) {
    if (out[p] == link) return p;
  }
  return static_cast<std::size_t>(-1);
}

void expect_matches_dense(const Topology& topology) {
  const auto grid = MeshGrid::analyze(topology);
  ASSERT_TRUE(grid.has_value()) << topology.name();
  const DimensionOrderRouting routing;
  const std::size_t n = topology.router_count();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      EXPECT_EQ(grid->next_port(a, b), dense_port(topology, routing, a, b))
          << topology.name() << " a=" << a << " b=" << b;
    }
  }
}

TEST(MeshGrid, MatchesDenseTableOnMesh2d) {
  expect_matches_dense(Topology::mesh_2d(5, 3));
  expect_matches_dense(Topology::mesh_2d(8, 8));
  expect_matches_dense(Topology::mesh_2d(1, 7));
}

TEST(MeshGrid, MatchesDenseTableOnMesh3d) {
  expect_matches_dense(Topology::mesh_3d(4, 4, 4));
  expect_matches_dense(Topology::mesh_3d(3, 2, 5));
}

TEST(MeshGrid, MatchesDenseTableOnConcentratedMeshes) {
  // Concentration changes module attachment, not router regularity.
  expect_matches_dense(Topology::star_mesh(4, 4, 4));
  expect_matches_dense(Topology::star_mesh_irl(3, 3, 4, 2));
  expect_matches_dense(Topology::ciliated_mesh_3d(3, 3, 2, 2));
}

TEST(MeshGrid, RejectsPartialVerticalMesh) {
  // Missing vertical links: not a full mesh, dense fallback required.
  const Topology t = Topology::partial_vertical_mesh_3d(4, 4, 2, 2);
  EXPECT_FALSE(MeshGrid::analyze(t).has_value());
}

TEST(MeshGrid, RejectsIrregularGraphs) {
  // Single router: nothing to route.
  EXPECT_FALSE(MeshGrid::analyze(Topology::mesh_2d(1, 1)).has_value());

  // A manual topology whose extents don't match its router count.
  Topology wrong("wrong_extents", 3, 1, 1);
  wrong.add_router({0, 0, 0});
  wrong.add_router({1, 0, 0});
  wrong.add_link({0, 1});
  wrong.add_link({1, 0});
  EXPECT_FALSE(MeshGrid::analyze(wrong).has_value());

  // A ring: the wrap-around link is not an axis-neighbour step.
  Topology ring("ring4", 4, 1, 1);
  for (int i = 0; i < 4; ++i) ring.add_router({i, 0, 0});
  for (std::size_t i = 0; i < 4; ++i) {
    ring.add_link({i, (i + 1) % 4});
    ring.add_link({(i + 1) % 4, i});
  }
  EXPECT_FALSE(MeshGrid::analyze(ring).has_value());

  // A line missing one back-link: not a full mesh.
  Topology gap("gap3", 3, 1, 1);
  for (int i = 0; i < 3; ++i) gap.add_router({i, 0, 0});
  gap.add_link({0, 1});
  gap.add_link({1, 2});
  gap.add_link({2, 1});
  EXPECT_FALSE(MeshGrid::analyze(gap).has_value());

  // Duplicate parallel links make the computed port ambiguous.
  Topology dup("dup2", 2, 1, 1);
  dup.add_router({0, 0, 0});
  dup.add_router({1, 0, 0});
  dup.add_link({0, 1});
  dup.add_link({0, 1});
  dup.add_link({1, 0});
  EXPECT_FALSE(MeshGrid::analyze(dup).has_value());
}

TEST(MeshGrid, NextPortFollowsDimensionOrder) {
  const Topology t = Topology::mesh_3d(3, 3, 3);
  const auto grid = MeshGrid::analyze(t);
  ASSERT_TRUE(grid.has_value());
  const DimensionOrderRouting routing;
  // Walk a full route hop by hop through the grid and confirm it lands
  // on the destination in the same number of hops as the dense route.
  const std::size_t src = t.router_at(0, 0, 0);
  const std::size_t dst = t.router_at(2, 1, 2);
  const Route dense = routing.route(t, src, dst);
  std::size_t at = src;
  std::size_t hops = 0;
  while (at != dst) {
    const std::uint8_t port = grid->next_port(at, dst);
    const Link& link = t.link(t.out_links(at)[port]);
    ASSERT_EQ(link.src, at);
    at = link.dst;
    ++hops;
    ASSERT_LE(hops, dense.size());
  }
  EXPECT_EQ(hops, dense.size());
}

}  // namespace
}  // namespace wi::noc

/// \file test_flit_sim_golden.cpp
/// \brief Golden-value regression tests for the flit-level simulator.
///
/// Captured from the pre-optimization (deque-based) simulator at fixed
/// seeds; the ring-buffer/precomputed-route rewrite must reproduce them
/// exactly. The simulator is pure integer/IEEE arithmetic (no libm on
/// the cycle path), so the counters are pinned with exact equality.

#include "wi/noc/flit_sim.hpp"

#include <gtest/gtest.h>

#include "wi/common/status.hpp"
#include "wi/noc/routing.hpp"
#include "wi/noc/topology.hpp"
#include "wi/noc/traffic.hpp"

namespace wi::noc {
namespace {

TEST(FlitSimGolden, Mesh2d8x8UniformDefaultConfig) {
  const Topology topo = Topology::mesh_2d(8, 8);
  const DimensionOrderRouting routing;
  const FlitSimConfig config;  // 3000/20000/20000, depth 8, seed 1
  const FlitSimResult result = simulate_network(
      topo, routing, TrafficPattern::uniform(64), 0.2, config);
  EXPECT_EQ(result.delivered, 256021u);
  EXPECT_EQ(result.injected, 256021u);
  EXPECT_TRUE(result.stable);
  EXPECT_DOUBLE_EQ(result.mean_latency_cycles, 13.345838817909469);
  EXPECT_DOUBLE_EQ(result.delivered_per_cycle, 0.20001640625);
}

TEST(FlitSimGolden, Mesh3dShortestPathTranspose) {
  // Exercises the BFS routing path of the precomputed next-hop table.
  const Topology topo = Topology::mesh_3d(4, 4, 4);
  const ShortestPathRouting routing;
  FlitSimConfig config;
  config.warmup_cycles = 1000;
  config.measure_cycles = 6000;
  config.drain_cycles = 6000;
  config.seed = 9;
  const FlitSimResult result = simulate_network(
      topo, routing, TrafficPattern::transpose(64), 0.15, config);
  EXPECT_EQ(result.delivered, 57477u);
  EXPECT_EQ(result.injected, 57477u);
  EXPECT_TRUE(result.stable);
  EXPECT_DOUBLE_EQ(result.mean_latency_cycles, 6.1082867929780607);
  EXPECT_DOUBLE_EQ(result.delivered_per_cycle, 0.14967968749999999);
}

TEST(FlitSimGolden, UnreachableRouteSurfacesStatus) {
  // Two disconnected routers with modules on both: the next-hop table
  // records the routing failure and the simulation surfaces it as a
  // structured StatusError the first time a flit needs the route.
  Topology topo("disconnected", 2, 1, 1);
  const std::size_t a = topo.add_router({0, 0, 0});
  const std::size_t b = topo.add_router({1, 0, 0});
  topo.attach_module(a);
  topo.attach_module(b);
  const ShortestPathRouting routing;
  FlitSimConfig config;
  config.warmup_cycles = 0;
  config.measure_cycles = 200;
  config.drain_cycles = 0;
  try {
    (void)simulate_network(topo, routing, TrafficPattern::uniform(2), 0.5,
                           config);
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kUnreachableRoute);
  }
}

}  // namespace
}  // namespace wi::noc

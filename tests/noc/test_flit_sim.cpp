#include "wi/noc/flit_sim.hpp"

#include <gtest/gtest.h>

#include "wi/noc/queueing_model.hpp"

namespace wi::noc {
namespace {

FlitSimConfig quick_config() {
  FlitSimConfig config;
  config.warmup_cycles = 1000;
  config.measure_cycles = 6000;
  config.drain_cycles = 6000;
  return config;
}

TEST(FlitSim, DeliversAllAtLowLoad) {
  const Topology t = Topology::mesh_2d(4, 4);
  const DimensionOrderRouting routing;
  const auto result = simulate_network(t, routing,
                                       TrafficPattern::uniform(16), 0.05,
                                       quick_config());
  EXPECT_TRUE(result.stable);
  EXPECT_GT(result.delivered, 0u);
  EXPECT_GE(result.delivered, result.injected * 99 / 100);
}

TEST(FlitSim, ThroughputTracksInjectionBelowSaturation) {
  const Topology t = Topology::mesh_3d(4, 4, 4);
  const DimensionOrderRouting routing;
  const auto result = simulate_network(t, routing,
                                       TrafficPattern::uniform(64), 0.2,
                                       quick_config());
  EXPECT_NEAR(result.delivered_per_cycle, 0.2, 0.02);
}

TEST(FlitSim, LatencyRisesWithLoad) {
  const Topology t = Topology::mesh_2d(8, 8);
  const DimensionOrderRouting routing;
  const TrafficPattern traffic = TrafficPattern::uniform(64);
  const auto low =
      simulate_network(t, routing, traffic, 0.05, quick_config());
  const auto high =
      simulate_network(t, routing, traffic, 0.3, quick_config());
  EXPECT_GT(high.mean_latency_cycles, low.mean_latency_cycles);
}

TEST(FlitSim, SaturatedNetworkDeliversLessThanInjected) {
  const Topology t = Topology::mesh_2d(8, 8);
  const DimensionOrderRouting routing;
  FlitSimConfig config = quick_config();
  config.drain_cycles = 500;  // don't let it fully drain
  const auto result = simulate_network(
      t, routing, TrafficPattern::uniform(64), 0.9, config);
  EXPECT_LT(result.delivered_per_cycle, 0.6);
}

TEST(FlitSim, AgreesWithAnalyticModelAtLowLoad) {
  // The DES and the M/M/1 model should agree within ~15% well below
  // saturation (the analytic model's validation).
  const Topology t = Topology::mesh_3d(4, 4, 4);
  const DimensionOrderRouting routing;
  const TrafficPattern traffic = TrafficPattern::uniform(64);
  const QueueingModel model(t, routing, traffic);
  for (const double rate : {0.05, 0.15}) {
    const auto des = simulate_network(t, routing, traffic, rate,
                                      quick_config());
    const double analytic = model.evaluate(rate).mean_latency_cycles;
    EXPECT_NEAR(des.mean_latency_cycles, analytic, 0.15 * analytic)
        << "rate " << rate;
  }
}

TEST(FlitSim, DeterministicBySeed) {
  const Topology t = Topology::mesh_2d(4, 4);
  const DimensionOrderRouting routing;
  FlitSimConfig config = quick_config();
  config.seed = 5;
  const auto a = simulate_network(t, routing, TrafficPattern::uniform(16),
                                  0.1, config);
  const auto b = simulate_network(t, routing, TrafficPattern::uniform(16),
                                  0.1, config);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_DOUBLE_EQ(a.mean_latency_cycles, b.mean_latency_cycles);
}

TEST(FlitSim, PermutationTrafficWorks) {
  const Topology t = Topology::mesh_2d(4, 4);
  const DimensionOrderRouting routing;
  const auto result = simulate_network(
      t, routing, TrafficPattern::transpose(16), 0.1, quick_config());
  EXPECT_TRUE(result.stable);
  EXPECT_GT(result.delivered, 0u);
}

TEST(FlitSim, RejectsTrafficMismatch) {
  const Topology t = Topology::mesh_2d(4, 4);
  const DimensionOrderRouting routing;
  EXPECT_THROW((void)simulate_network(t, routing, TrafficPattern::uniform(8),
                                0.1, quick_config()),
               std::invalid_argument);
}

}  // namespace
}  // namespace wi::noc

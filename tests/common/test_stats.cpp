#include "wi/common/stats.hpp"

#include <gtest/gtest.h>

#include "wi/common/rng.hpp"

namespace wi {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(13);
  RunningStats whole;
  RunningStats part1;
  RunningStats part2;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(1.0, 2.0);
    whole.add(x);
    (i < 400 ? part1 : part2).add(x);
  }
  part1.merge(part2);
  EXPECT_EQ(part1.count(), whole.count());
  EXPECT_NEAR(part1.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(part1.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(part1.min(), whole.min());
  EXPECT_DOUBLE_EQ(part1.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStats, CiShrinksWithSamples) {
  Rng rng(14);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 100; ++i) small.add(rng.gaussian());
  for (int i = 0; i < 10000; ++i) large.add(rng.gaussian());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

// Chan's parallel update must be *exact* for count/min/max and
// invariant (to rounding) under how the sample stream is partitioned —
// the property the sharded wi_serve metrics rely on when folding
// per-thread accumulators into one snapshot.
TEST(RunningStats, MergeIsPartitionInvariant) {
  Rng rng(16);
  std::vector<double> samples;
  for (int i = 0; i < 900; ++i) samples.push_back(rng.gaussian(-2.0, 5.0));

  RunningStats whole;
  for (const double x : samples) whole.add(x);

  // Three very unequal partitions of the same stream.
  const std::size_t cuts[][2] = {{1, 899}, {450, 450}, {899, 1}};
  for (const auto& cut : cuts) {
    RunningStats a;
    RunningStats b;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      (i < cut[0] ? a : b).add(samples[i]);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-8);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
  }
}

TEST(RunningStats, MergeIsAssociative) {
  Rng rng(17);
  RunningStats parts[3];
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 100 * (p + 1); ++i) {
      parts[p].add(rng.gaussian(3.0, 0.5));
    }
  }
  // (a + b) + c  vs  a + (b + c)
  RunningStats left = parts[0];
  left.merge(parts[1]);
  left.merge(parts[2]);
  RunningStats bc = parts[1];
  bc.merge(parts[2]);
  RunningStats right = parts[0];
  right.merge(bc);
  EXPECT_EQ(left.count(), right.count());
  EXPECT_NEAR(left.mean(), right.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), right.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), right.min());
  EXPECT_DOUBLE_EQ(left.max(), right.max());
}

TEST(RunningStats, MergeOfSingleSampleAccumulatorsMatchesAdd) {
  // Degenerate shards: every sample lives in its own accumulator.
  // This fold must be EXACT (bit-identical to sequential add), not
  // merely close: the distributed campaign aggregator folds one
  // single-sample accumulator per seed and promises an aggregate
  // bit-identical to the single-process run.
  const double samples[] = {1.5, -0.25, 8.0, 8.0, 3.5};
  RunningStats sequential;
  RunningStats folded;
  for (const double x : samples) {
    sequential.add(x);
    RunningStats single;
    single.add(x);
    folded.merge(single);
    EXPECT_EQ(folded.count(), sequential.count());
    EXPECT_EQ(folded.mean(), sequential.mean());
    EXPECT_EQ(folded.variance(), sequential.variance());
    EXPECT_EQ(folded.min(), sequential.min());
    EXPECT_EQ(folded.max(), sequential.max());
  }
}

TEST(RunningStats, SingleSampleFoldIsExactOnRandomStreams) {
  // 1000 awkward magnitudes: the exactness above must not depend on
  // friendly values. Checked after every fold so the first divergent
  // rounding is pinpointed.
  Rng rng(23);
  RunningStats sequential;
  RunningStats folded;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(0.0, 1.0) * 1e6 + rng.uniform(-1.0, 1.0);
    sequential.add(x);
    RunningStats single;
    single.add(x);
    folded.merge(single);
    ASSERT_EQ(folded.mean(), sequential.mean()) << "sample " << i;
    ASSERT_EQ(folded.variance(), sequential.variance()) << "sample " << i;
  }
  EXPECT_EQ(folded.count(), sequential.count());
  EXPECT_EQ(folded.ci95_halfwidth(), sequential.ci95_halfwidth());
}

TEST(RunningStats, ManyShardFoldMatchesSequential) {
  Rng rng(18);
  RunningStats whole;
  RunningStats shards[8];
  for (int i = 0; i < 4096; ++i) {
    const double x = rng.gaussian(10.0, 3.0);
    whole.add(x);
    shards[i % 8].add(x);
  }
  RunningStats folded;
  for (const RunningStats& shard : shards) folded.merge(shard);
  EXPECT_EQ(folded.count(), whole.count());
  EXPECT_NEAR(folded.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(folded.variance(), whole.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(folded.min(), whole.min());
  EXPECT_DOUBLE_EQ(folded.max(), whole.max());
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);   // underflow
  h.add(0.0);    // bin 0
  h.add(5.5);    // bin 5
  h.add(9.999);  // bin 9
  h.add(10.0);   // overflow (half-open)
  h.add(42.0);   // overflow
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(5), 1u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
}

TEST(Histogram, MedianOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(15);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
}

TEST(Histogram, MergeIsExactPerBin) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  Histogram whole(0.0, 10.0, 10);
  Rng rng(19);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(-1.0, 12.0);  // exercises both tails
    whole.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.total(), whole.total());
  EXPECT_EQ(a.underflow(), whole.underflow());
  EXPECT_EQ(a.overflow(), whole.overflow());
  for (std::size_t i = 0; i < whole.bin_count(); ++i) {
    EXPECT_EQ(a.bin(i), whole.bin(i)) << "bin " << i;
  }
}

TEST(Histogram, MergeRejectsIncompatibleBinning) {
  Histogram base(0.0, 10.0, 10);
  EXPECT_THROW(base.merge(Histogram(0.0, 10.0, 20)),
               std::invalid_argument);
  EXPECT_THROW(base.merge(Histogram(0.0, 5.0, 10)),
               std::invalid_argument);
  EXPECT_THROW(base.merge(Histogram(1.0, 10.0, 10)),
               std::invalid_argument);
  // A compatible merge afterwards still works (failed merges must not
  // corrupt state).
  Histogram same(0.0, 10.0, 10);
  same.add(5.0);
  base.merge(same);
  EXPECT_EQ(base.total(), 1u);
}

}  // namespace
}  // namespace wi

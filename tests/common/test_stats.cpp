#include "wi/common/stats.hpp"

#include <gtest/gtest.h>

#include "wi/common/rng.hpp"

namespace wi {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(13);
  RunningStats whole;
  RunningStats part1;
  RunningStats part2;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(1.0, 2.0);
    whole.add(x);
    (i < 400 ? part1 : part2).add(x);
  }
  part1.merge(part2);
  EXPECT_EQ(part1.count(), whole.count());
  EXPECT_NEAR(part1.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(part1.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(part1.min(), whole.min());
  EXPECT_DOUBLE_EQ(part1.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStats, CiShrinksWithSamples) {
  Rng rng(14);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 100; ++i) small.add(rng.gaussian());
  for (int i = 0; i < 10000; ++i) large.add(rng.gaussian());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);   // underflow
  h.add(0.0);    // bin 0
  h.add(5.5);    // bin 5
  h.add(9.999);  // bin 9
  h.add(10.0);   // overflow (half-open)
  h.add(42.0);   // overflow
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(5), 1u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
}

TEST(Histogram, MedianOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(15);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
}

}  // namespace
}  // namespace wi

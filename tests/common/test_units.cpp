#include "wi/common/units.hpp"

#include <gtest/gtest.h>

#include "wi/common/constants.hpp"

namespace wi {
namespace {

TEST(Units, DbRoundTrip) {
  for (const double db : {-30.0, -3.0, 0.0, 3.0, 10.0, 59.8}) {
    EXPECT_NEAR(lin_to_db(db_to_lin(db)), db, 1e-12);
  }
}

TEST(Units, KnownDbValues) {
  EXPECT_NEAR(db_to_lin(10.0), 10.0, 1e-12);
  EXPECT_NEAR(db_to_lin(3.0), 1.9952623149688795, 1e-12);
  EXPECT_NEAR(lin_to_db(2.0), 3.0102999566398120, 1e-12);
  EXPECT_NEAR(lin_to_db(1.0), 0.0, 1e-12);
}

TEST(Units, AmplitudeVsPower) {
  // 20 dB in amplitude is a factor 10; in power a factor 100.
  EXPECT_NEAR(db_to_amp(20.0), 10.0, 1e-12);
  EXPECT_NEAR(db_to_lin(20.0), 100.0, 1e-12);
  EXPECT_NEAR(amp_to_db(10.0), 20.0, 1e-12);
}

TEST(Units, DbmWattRoundTrip) {
  EXPECT_NEAR(dbm_to_watt(0.0), 1e-3, 1e-15);
  EXPECT_NEAR(dbm_to_watt(30.0), 1.0, 1e-12);
  EXPECT_NEAR(watt_to_dbm(1e-3), 0.0, 1e-12);
  for (const double dbm : {-60.0, -15.75, 0.0, 33.79}) {
    EXPECT_NEAR(watt_to_dbm(dbm_to_watt(dbm)), dbm, 1e-10);
  }
}

TEST(Units, LengthAndFrequency) {
  EXPECT_DOUBLE_EQ(mm_to_m(100.0), 0.1);
  EXPECT_DOUBLE_EQ(m_to_mm(0.3), 300.0);
  EXPECT_DOUBLE_EQ(ghz_to_hz(232.5), 232.5e9);
  EXPECT_DOUBLE_EQ(hz_to_ghz(25e9), 25.0);
}

TEST(Constants, ThermalNoiseDensity) {
  // kT at 290 K in dBm/Hz should match the canonical -174 dBm/Hz.
  const double ktb_dbm = watt_to_dbm(kBoltzmann_jpk * 290.0);
  EXPECT_NEAR(ktb_dbm, kThermalNoiseDensity290k_dbmhz, 0.01);
}

TEST(Constants, SpeedOfLightWavelength) {
  // 232.5 GHz carrier -> lambda ~ 1.29 mm (4x4 array in 2mm x 2mm).
  const double lambda_mm = kSpeedOfLight_mps / 232.5e9 * 1e3;
  EXPECT_NEAR(lambda_mm, 1.2894, 1e-3);
}

}  // namespace
}  // namespace wi

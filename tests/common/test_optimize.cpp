#include "wi/common/optimize.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wi {
namespace {

TEST(Bisect, FindsRootOfLinear) {
  const auto result = bisect([](double x) { return x - 3.0; }, 0.0, 10.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x, 3.0, 1e-5);
}

TEST(Bisect, FindsRootOfTranscendental) {
  const auto result =
      bisect([](double x) { return std::cos(x); }, 0.0, 3.0, 1e-9);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x, M_PI / 2.0, 1e-8);
}

TEST(Bisect, RejectsNonBracketing) {
  EXPECT_THROW((void)bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               std::invalid_argument);
}

TEST(Bisect, ExactEndpointRoot) {
  const auto result = bisect([](double x) { return x; }, 0.0, 1.0);
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.x, 0.0);
}

TEST(GoldenSection, FindsParabolaMinimum) {
  const auto result = golden_section_min(
      [](double x) { return (x - 2.5) * (x - 2.5) + 1.0; }, 0.0, 10.0, 1e-8);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x, 2.5, 1e-6);
  EXPECT_NEAR(result.fx, 1.0, 1e-10);
}

TEST(NelderMead, MinimizesQuadraticBowl) {
  const auto result = nelder_mead(
      [](const std::vector<double>& x) {
        return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] + 2.0) * (x[1] + 2.0);
      },
      {0.0, 0.0});
  EXPECT_NEAR(result.x[0], 1.0, 1e-3);
  EXPECT_NEAR(result.x[1], -2.0, 1e-3);
  EXPECT_LT(result.fx, 1e-5);
}

TEST(NelderMead, MinimizesRosenbrock) {
  NelderMeadOptions options;
  options.max_evals = 20000;
  options.xtol = 1e-9;
  const auto result = nelder_mead(
      [](const std::vector<double>& x) {
        const double a = 1.0 - x[0];
        const double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
      },
      {-1.2, 1.0}, options);
  EXPECT_NEAR(result.x[0], 1.0, 1e-2);
  EXPECT_NEAR(result.x[1], 1.0, 1e-2);
}

TEST(NelderMead, RespectsEvalBudget) {
  NelderMeadOptions options;
  options.max_evals = 50;
  int evals = 0;
  const auto result = nelder_mead(
      [&](const std::vector<double>& x) {
        ++evals;
        return x[0] * x[0] + x[1] * x[1] + x[2] * x[2];
      },
      {3.0, -2.0, 5.0}, options);
  EXPECT_LE(evals, 50 + 4);  // small slack for the final shrink pass
  EXPECT_EQ(result.evaluations, evals);
}

TEST(NelderMead, RejectsEmptyStart) {
  EXPECT_THROW(
      nelder_mead([](const std::vector<double>&) { return 0.0; }, {}),
      std::invalid_argument);
}

TEST(CoordinateDescent, PolishesQuadratic) {
  const auto result = coordinate_descent(
      [](const std::vector<double>& x) {
        return (x[0] - 4.0) * (x[0] - 4.0) + (x[1] - 1.0) * (x[1] - 1.0);
      },
      {0.0, 0.0}, 1.0, 1e-6, 200);
  EXPECT_NEAR(result.x[0], 4.0, 1e-3);
  EXPECT_NEAR(result.x[1], 1.0, 1e-3);
}

}  // namespace
}  // namespace wi

/// wi::fault unit tests: the derivation chain is pure and stable, the
/// schedule is bit-identical however the entity range is partitioned
/// across threads (the property the campaign statistical goldens lean
/// on), and validation rejects malformed specs.

#include "wi/common/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

namespace wi::fault {
namespace {

TEST(Fault, DeriveIsPureAndStreamSeparated) {
  const std::uint64_t a = derive(42, Stream::kLinkFail, 7);
  EXPECT_EQ(a, derive(42, Stream::kLinkFail, 7));
  EXPECT_NE(a, derive(42, Stream::kLinkCycle, 7));
  EXPECT_NE(a, derive(42, Stream::kLinkFail, 8));
  EXPECT_NE(a, derive(43, Stream::kLinkFail, 7));
}

TEST(Fault, UnitIntervalIsInHalfOpenRange) {
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const double u = unit_interval(derive(1, Stream::kLinkFail, i));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Fault, DecideMatchesEmpiricalRate) {
  const double rate = 0.2;
  int fired = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (decide(99, Stream::kRouterFail,
               static_cast<std::uint64_t>(i), rate)) {
      ++fired;
    }
  }
  const double observed = static_cast<double>(fired) / kTrials;
  EXPECT_NEAR(observed, rate, 0.02);
  // Zero rate literally never fires.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(decide(99, Stream::kRouterFail,
                        static_cast<std::uint64_t>(i), 0.0));
  }
}

TEST(Fault, SpecValidation) {
  FaultSpec spec;
  EXPECT_FALSE(spec.enabled());
  EXPECT_TRUE(spec.validate("test").is_ok());
  spec.link_fail_rate = 0.1;
  EXPECT_TRUE(spec.enabled());
  EXPECT_TRUE(spec.validate("test").is_ok());
  spec.link_fail_rate = 1.5;
  EXPECT_FALSE(spec.validate("test").is_ok());
  spec.link_fail_rate = 0.1;
  spec.window_begin = 0.8;
  spec.window_end = 0.2;
  EXPECT_FALSE(spec.validate("test").is_ok());
}

TEST(Fault, DisabledSpecDerivesAnEmptySchedule) {
  FaultSpec spec;  // all rates zero
  const FaultSchedule schedule = FaultSchedule::derive(spec, 64, 16, 5000);
  EXPECT_TRUE(schedule.empty());
}

TEST(Fault, ScheduleRespectsTheActivationWindow) {
  FaultSpec spec;
  spec.link_fail_rate = 0.5;
  spec.router_fail_rate = 0.5;
  spec.window_begin = 0.25;
  spec.window_end = 0.75;
  const std::uint64_t horizon = 4000;
  const FaultSchedule schedule =
      FaultSchedule::derive(spec, 128, 64, horizon);
  ASSERT_FALSE(schedule.empty());
  for (const FaultEvent& event : schedule.events) {
    EXPECT_GE(event.at_cycle, 1000u);
    EXPECT_LT(event.at_cycle, horizon);
  }
  EXPECT_GT(schedule.links_failed(), 0u);
  EXPECT_GT(schedule.routers_failed(), 0u);
  EXPECT_EQ(schedule.links_failed() + schedule.routers_failed(),
            schedule.events.size());
  // Sorted by (at_cycle, kind, index): the simulation consumes it with
  // a single forward cursor.
  EXPECT_TRUE(std::is_sorted(
      schedule.events.begin(), schedule.events.end(),
      [](const FaultEvent& a, const FaultEvent& b) {
        if (a.at_cycle != b.at_cycle) return a.at_cycle < b.at_cycle;
        if (a.kind != b.kind) return a.kind < b.kind;
        return a.index < b.index;
      }));
}

TEST(Fault, ScheduleIsBitIdenticalUnderThreadPartitioning) {
  // The contract behind the campaign goldens: because every entity's
  // verdict is a pure function of (seed, stream, index), deriving the
  // schedule serially or by fanning the entity range over N threads
  // yields the exact same event list. Reconstruct the per-entity
  // decisions with 4 threads and compare with FaultSchedule::derive.
  FaultSpec spec;
  spec.link_fail_rate = 0.15;
  spec.router_fail_rate = 0.08;
  spec.window_begin = 0.1;
  spec.window_end = 0.6;
  spec.seed = 1234;
  const std::size_t links = 4096;
  const std::size_t routers = 1024;
  const std::uint64_t horizon = 100000;

  const FaultSchedule serial =
      FaultSchedule::derive(spec, links, routers, horizon);

  constexpr std::size_t kThreads = 4;
  std::vector<std::vector<FaultEvent>> partials(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Strided partition: thread t owns every kThreads-th entity —
      // deliberately NOT contiguous, to prove order independence.
      for (std::size_t i = t; i < links; i += kThreads) {
        FaultSpec sub = spec;
        sub.router_fail_rate = 0.0;
        FaultSchedule one =
            FaultSchedule::derive(sub, i + 1, 0, horizon);
        for (const FaultEvent& event : one.events) {
          if (event.index == i) partials[t].push_back(event);
        }
      }
      for (std::size_t i = t; i < routers; i += kThreads) {
        FaultSpec sub = spec;
        sub.link_fail_rate = 0.0;
        FaultSchedule one =
            FaultSchedule::derive(sub, 0, i + 1, horizon);
        for (const FaultEvent& event : one.events) {
          if (event.index == i) partials[t].push_back(event);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  std::vector<FaultEvent> merged;
  for (const auto& partial : partials) {
    merged.insert(merged.end(), partial.begin(), partial.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.at_cycle != b.at_cycle) {
                return a.at_cycle < b.at_cycle;
              }
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.index < b.index;
            });

  ASSERT_EQ(merged.size(), serial.events.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].kind, serial.events[i].kind) << "event " << i;
    EXPECT_EQ(merged[i].index, serial.events[i].index) << "event " << i;
    EXPECT_EQ(merged[i].at_cycle, serial.events[i].at_cycle)
        << "event " << i;
  }
}

TEST(Fault, ScheduleChangesWithSeed) {
  FaultSpec spec;
  spec.link_fail_rate = 0.3;
  spec.seed = 1;
  const FaultSchedule first = FaultSchedule::derive(spec, 256, 0, 1000);
  spec.seed = 2;
  const FaultSchedule second = FaultSchedule::derive(spec, 256, 0, 1000);
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(second.empty());
  const bool same_size = first.events.size() == second.events.size();
  bool identical = same_size;
  if (same_size) {
    for (std::size_t i = 0; i < first.events.size(); ++i) {
      if (first.events[i].index != second.events[i].index ||
          first.events[i].at_cycle != second.events[i].at_cycle) {
        identical = false;
        break;
      }
    }
  }
  EXPECT_FALSE(identical) << "different seeds must differ";
}

}  // namespace
}  // namespace wi::fault

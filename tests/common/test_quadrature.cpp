#include "wi/common/quadrature.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wi {
namespace {

TEST(GaussHermite, WeightsSumToSqrtPi) {
  for (const std::size_t n : {4u, 16u, 64u, 96u}) {
    const auto rule = gauss_hermite(n);
    double sum = 0.0;
    for (const double w : rule.weights) sum += w;
    EXPECT_NEAR(sum, std::sqrt(M_PI), 1e-9) << "n=" << n;
  }
}

TEST(GaussHermite, NodesSymmetric) {
  const auto rule = gauss_hermite(32);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(rule.nodes[i], -rule.nodes[31 - i], 1e-10);
    EXPECT_NEAR(rule.weights[i], rule.weights[31 - i], 1e-12);
  }
}

TEST(GaussHermite, IntegratesPolynomialsExactly) {
  // integral x^2 e^{-x^2} dx = sqrt(pi)/2; x^4 -> 3 sqrt(pi)/4.
  const auto rule = gauss_hermite(8);
  double m2 = 0.0;
  double m4 = 0.0;
  for (std::size_t i = 0; i < rule.nodes.size(); ++i) {
    m2 += rule.weights[i] * rule.nodes[i] * rule.nodes[i];
    m4 += rule.weights[i] * std::pow(rule.nodes[i], 4.0);
  }
  EXPECT_NEAR(m2, std::sqrt(M_PI) / 2.0, 1e-10);
  EXPECT_NEAR(m4, 3.0 * std::sqrt(M_PI) / 4.0, 1e-9);
}

TEST(GaussHermite, RejectsBadSizes) {
  EXPECT_THROW(gauss_hermite(0), std::invalid_argument);
  EXPECT_THROW(gauss_hermite(300), std::invalid_argument);
}

TEST(GaussianExpectation, MomentsOfShiftedGaussian) {
  // E[Z] and E[Z^2] for Z ~ N(3, 4).
  const double mean =
      gaussian_expectation([](double z) { return z; }, 3.0, 2.0);
  const double second =
      gaussian_expectation([](double z) { return z * z; }, 3.0, 2.0);
  EXPECT_NEAR(mean, 3.0, 1e-10);
  EXPECT_NEAR(second, 13.0, 1e-9);  // var + mean^2 = 4 + 9
}

TEST(GaussianExpectation, NonlinearFunction) {
  // E[cos(Z)] for Z ~ N(0,1) = e^{-1/2}.
  const double value =
      gaussian_expectation([](double z) { return std::cos(z); }, 0.0, 1.0);
  EXPECT_NEAR(value, std::exp(-0.5), 1e-8);
}

}  // namespace
}  // namespace wi

#include "wi/common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wi {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto x0 = a();
  const auto x1 = a();
  a.reseed(7);
  EXPECT_EQ(a(), x0);
  EXPECT_EQ(a(), x1);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanVariance) {
  Rng rng(4);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.003);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(5);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const auto v = rng.uniform_int(7);
    ASSERT_LT(v, 7u);
    ++counts[v];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, 10000, 500);  // ~5 sigma
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(6);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, GaussianScaledMoments) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(3.0, 2.0);
  EXPECT_NEAR(sum / n, 3.0, 0.03);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(8);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(2.5));
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(80.0));
  EXPECT_NEAR(sum / n, 80.0, 0.5);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(11);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, ExponentialMean) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.005);
}

}  // namespace
}  // namespace wi

#include "wi/common/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wi {
namespace {

TEST(Qfunc, KnownValues) {
  EXPECT_NEAR(qfunc(0.0), 0.5, 1e-12);
  EXPECT_NEAR(qfunc(1.0), 0.15865525393145707, 1e-12);
  EXPECT_NEAR(qfunc(3.0), 1.3498980316300946e-3, 1e-12);
  EXPECT_NEAR(qfunc(-1.0), 1.0 - qfunc(1.0), 1e-12);
}

TEST(Qfunc, Monotone) {
  double prev = 1.0;
  for (double x = -5.0; x <= 5.0; x += 0.25) {
    const double q = qfunc(x);
    EXPECT_LT(q, prev);
    prev = q;
  }
}

TEST(Qfunc, InverseRoundTrip) {
  for (const double p : {0.4, 0.1, 1e-2, 1e-3, 1e-5, 0.6, 0.9}) {
    EXPECT_NEAR(qfunc(qfunc_inv(p)), p, p * 1e-6);
  }
}

TEST(Qfunc, InverseRejectsOutOfRange) {
  EXPECT_THROW((void)qfunc_inv(0.0), std::domain_error);
  EXPECT_THROW((void)qfunc_inv(1.0), std::domain_error);
  EXPECT_THROW((void)qfunc_inv(-0.1), std::domain_error);
}

TEST(NormalCdf, ComplementsQ) {
  for (double x = -3.0; x <= 3.0; x += 0.5) {
    EXPECT_NEAR(normal_cdf(x) + qfunc(x), 1.0, 1e-12);
  }
}

TEST(BinaryEntropy, Endpoints) {
  EXPECT_DOUBLE_EQ(binary_entropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(1.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(0.5), 1.0);
}

TEST(BinaryEntropy, Symmetry) {
  for (const double p : {0.1, 0.25, 0.33, 0.45}) {
    EXPECT_NEAR(binary_entropy(p), binary_entropy(1.0 - p), 1e-12);
  }
}

TEST(Xlog2x, Values) {
  EXPECT_DOUBLE_EQ(xlog2x(0.0), 0.0);
  EXPECT_DOUBLE_EQ(xlog2x(1.0), 0.0);
  EXPECT_NEAR(xlog2x(2.0), 2.0, 1e-12);
  EXPECT_NEAR(xlog2x(0.5), -0.5, 1e-12);
}

TEST(Linspace, EndpointsAndSpacing) {
  const auto v = linspace(0.0, 1.0, 11);
  ASSERT_EQ(v.size(), 11u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  for (std::size_t i = 1; i < v.size(); ++i) {
    EXPECT_NEAR(v[i] - v[i - 1], 0.1, 1e-12);
  }
}

TEST(Linspace, DegenerateSizes) {
  EXPECT_TRUE(linspace(0.0, 1.0, 0).empty());
  const auto one = linspace(5.0, 9.0, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 5.0);
}

TEST(InterpLinear, InteriorAndClamping) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> ys = {0.0, 10.0, 0.0};
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 1.5), 5.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, -1.0), 0.0);   // clamp low
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 3.0), 0.0);    // clamp high
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 1.0), 10.0);   // exact knot
}

TEST(InterpLinear, RejectsBadInput) {
  EXPECT_THROW((void)interp_linear({}, {}, 0.0), std::invalid_argument);
  EXPECT_THROW((void)interp_linear({1.0}, {1.0, 2.0}, 0.0), std::invalid_argument);
}

TEST(Gcd, Values) {
  EXPECT_EQ(gcd_u64(12, 18), 6ull);
  EXPECT_EQ(gcd_u64(17, 5), 1ull);
  EXPECT_EQ(gcd_u64(0, 7), 7ull);
  EXPECT_EQ(gcd_u64(7, 0), 7ull);
}

TEST(ApproxEqual, Tolerances) {
  EXPECT_TRUE(approx_equal(1.0, 1.0));
  EXPECT_TRUE(approx_equal(1.0 + 1e-12, 1.0));
  EXPECT_FALSE(approx_equal(1.01, 1.0));
  EXPECT_TRUE(approx_equal(1.01, 1.0, 0.05));
}

}  // namespace
}  // namespace wi

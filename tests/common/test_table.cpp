#include "wi/common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace wi {
namespace {

TEST(Table, RejectsEmptyHeadersAndArityMismatch) {
  // Explicit vector: bare {} would now select the headerless ctor.
  EXPECT_THROW(Table(std::vector<std::string>{}), std::invalid_argument);
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(table.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, HeaderlessPlaceholderRejectsRows) {
  const Table empty;
  EXPECT_EQ(empty.columns(), 0u);
  Table placeholder;
  EXPECT_THROW(placeholder.add_row({"1"}), std::invalid_argument);
  // Even a zero-cell row: the placeholder accepts no data at all.
  EXPECT_THROW(placeholder.add_row({}), std::invalid_argument);
}

TEST(Table, RowCount) {
  Table table({"x"});
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, PrintContainsHeadersAndValues) {
  Table table({"dist", "loss"});
  table.add_row({"100", "59.8"});
  std::ostringstream oss;
  table.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("dist"), std::string::npos);
  EXPECT_NE(out.find("59.8"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvFormat) {
  Table table({"a", "b"});
  table.add_row({"1", "2"});
  std::ostringstream oss;
  table.print_csv(oss);
  EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 0), "3");
  EXPECT_EQ(Table::num(static_cast<long long>(42)), "42");
  EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace wi

/// Property-based round-trip belt: ~200 randomized Tables and
/// ScenarioSpecs pushed through the CSV and JSON codecs, asserting
/// decode(encode(x)) == x. Seeded with wi::Rng, so every failure is
/// reproducible from the iteration index alone. The cell generator
/// deliberately produces the nasty cases the codecs claim to handle:
/// NaN/inf strings, empty cells, commas, quotes, newlines, headerless
/// placeholder tables and empty (zero-row) tables.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "wi/common/rng.hpp"
#include "wi/common/table.hpp"
#include "wi/common/table_io.hpp"
#include "wi/sim/sim.hpp"

namespace wi {
namespace {

constexpr std::size_t kIterations = 200;

/// Random cell content spanning numbers, specials and quoting hazards.
[[nodiscard]] std::string random_cell(Rng& rng) {
  switch (rng.uniform_int(8)) {
    case 0:
      return "";  // empty cell
    case 1:
      return Table::num(rng.uniform(-1e6, 1e6), 6);
    case 2: {
      const char* specials[] = {"nan", "-nan", "inf", "-inf", "-", "sat"};
      return specials[rng.uniform_int(6)];
    }
    case 3: {  // quoting hazards
      const char* hazards[] = {"a,b", "he said \"hi\"", "line\nbreak",
                               ",", "\"\"", " leading and trailing "};
      return hazards[rng.uniform_int(6)];
    }
    default: {  // plain short token
      std::string s;
      const std::size_t n = rng.uniform_int(8);
      for (std::size_t i = 0; i < n; ++i) {
        s += static_cast<char>('a' + rng.uniform_int(26));
      }
      return s;
    }
  }
}

[[nodiscard]] Table random_table(Rng& rng) {
  if (rng.uniform_int(16) == 0) return Table();  // headerless placeholder
  const std::size_t columns = 1 + rng.uniform_int(5);
  std::vector<std::string> headers;
  for (std::size_t c = 0; c < columns; ++c) {
    // Headers must be unique? No — the Table does not require it; keep
    // them printable but allow hazards too.
    headers.push_back("h" + std::to_string(c) +
                      (rng.uniform_int(4) == 0 ? ",x" : ""));
  }
  Table table(std::move(headers));
  const std::size_t rows = rng.uniform_int(9);  // 0..8, empty included
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::string> cells;
    for (std::size_t c = 0; c < columns; ++c) {
      cells.push_back(random_cell(rng));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

TEST(PropertyRoundTrip, TablesSurviveCsv) {
  Rng rng(20260729);
  for (std::size_t i = 0; i < kIterations; ++i) {
    const Table table = random_table(rng);
    const Table decoded = table_from_csv(to_csv(table));
    EXPECT_EQ(decoded, table) << "iteration " << i;
  }
}

TEST(PropertyRoundTrip, TablesSurviveJson) {
  Rng rng(20260730);
  for (std::size_t i = 0; i < kIterations; ++i) {
    const Table table = random_table(rng);
    const Table decoded =
        table_from_json(Json::parse(table_to_json(table).dump()));
    EXPECT_EQ(decoded, table) << "iteration " << i;
    // Pretty-printing must not change the parsed value either.
    const Table pretty =
        table_from_json(Json::parse(table_to_json(table).dump(2)));
    EXPECT_EQ(pretty, table) << "iteration " << i;
  }
}

// ---------------------------------------------------------------------------
// ScenarioSpec fuzzing. The spec has no operator==; the canonical
// serialization is the identity that matters (it is what the result
// store hashes), so the property is encode(decode(encode(x))) ==
// encode(x).

template <typename Enum>
[[nodiscard]] Enum random_enum(Rng& rng, std::initializer_list<Enum> values) {
  return values.begin()[rng.uniform_int(values.size())];
}

/// Seeds must stay <= 2^53: the JSON codec rejects integers a double
/// cannot represent exactly (by design — they could not round-trip).
[[nodiscard]] std::uint64_t random_seed(Rng& rng) {
  return rng() & ((1ULL << 53) - 1);
}

[[nodiscard]] sim::ScenarioSpec random_spec(Rng& rng) {
  using namespace wi::sim;
  ScenarioSpec spec;
  spec.name = "fuzz_" + std::to_string(rng.uniform_int(1u << 20));
  spec.description = random_cell(rng);
  // Every registered workload, including plugin-only ones: the codec
  // must round-trip any of them.
  const std::vector<std::string> workloads =
      WorkloadRegistry::global().names();
  spec.workload = workloads[rng.uniform_int(workloads.size())];
  spec.geometry.boards = 1 + rng.uniform_int(8);
  spec.geometry.board_size_mm = rng.uniform(1.0, 500.0);
  spec.geometry.separation_mm = rng.uniform(1.0, 500.0);
  spec.geometry.nodes_per_edge = 1 + rng.uniform_int(8);
  spec.link.budget.carrier_freq_hz = rng.uniform(1e9, 1e12);
  spec.link.budget.bandwidth_hz = rng.uniform(1e9, 1e11);
  spec.link.beamforming = random_enum(
      rng, {core::Beamforming::kIdealSteering,
            core::Beamforming::kButlerMatrix});
  spec.link.ptx_dbm = rng.uniform(-30.0, 30.0);
  spec.phy.receiver = random_enum(
      rng, {core::PhyReceiver::kOneBitSequence,
            core::PhyReceiver::kOneBitSymbolwise,
            core::PhyReceiver::kOneBitRect, core::PhyReceiver::kUnquantized});
  spec.phy.polarizations = 1 + rng.uniform_int(2);
  spec.noc.topology.kind = random_enum(
      rng, {sim::TopologySpec::Kind::kMesh2d,
            sim::TopologySpec::Kind::kStarMesh,
            sim::TopologySpec::Kind::kStarMeshIrl,
            sim::TopologySpec::Kind::kMesh3d,
            sim::TopologySpec::Kind::kCiliatedMesh3d,
            sim::TopologySpec::Kind::kPartialVertical3d});
  spec.noc.topology.kx = 1 + rng.uniform_int(16);
  spec.noc.topology.ky = 1 + rng.uniform_int(16);
  spec.noc.topology.kz = 1 + rng.uniform_int(8);
  spec.noc.topology.concentration = 1 + rng.uniform_int(4);
  spec.noc.traffic = random_enum(
      rng, {sim::TrafficKind::kUniform, sim::TrafficKind::kTranspose,
            sim::TrafficKind::kBitComplement, sim::TrafficKind::kHotspot});
  spec.noc.routing = random_enum(rng, {sim::RoutingKind::kDimensionOrder,
                                       sim::RoutingKind::kShortestPath});
  const std::size_t rates = rng.uniform_int(6);
  spec.noc.injection_rates.clear();
  for (std::size_t i = 0; i < rates; ++i) {
    spec.noc.injection_rates.push_back(rng.uniform(0.0, 1.0));
  }
  spec.noc.des_seed = random_seed(rng);
  // Randomize the selected workload's payload (shared sections above
  // fuzz every spec; the payload only exists for its own workload).
  if (spec.workload == "pathloss_campaign") {
    spec.payload<sim::PathlossSpec>().seed = random_seed(rng);
  } else if (spec.workload == "flit_sim") {
    auto& flit = spec.payload<sim::FlitSimSpec>();
    flit.seed = random_seed(rng);
    flit.warmup_cycles = rng.uniform_int(5000);
    flit.measure_cycles = 1 + rng.uniform_int(20000);
    flit.injection_rates = spec.noc.injection_rates;
  } else if (spec.workload == "nics_stack") {
    auto& config = spec.payload<sim::NicsSpec>().config;
    config.tech = random_enum(
        rng,
        {core::VerticalLinkTech::kTsv, core::VerticalLinkTech::kInductive,
         core::VerticalLinkTech::kCapacitive});
    config.vertical_period = 1 + rng.uniform_int(4);
  } else if (spec.workload == "hybrid_system") {
    spec.payload<sim::HybridSpec>().config.inter_board_fraction =
        rng.uniform(0.0, 1.0);
  } else if (spec.workload == "impulse_response") {
    auto& impulse = spec.payload<sim::ImpulseSpec>();
    impulse.distance_m = rng.uniform(0.01, 0.5);
    impulse.seed = random_seed(rng);
  } else if (spec.workload == "isi_filters") {
    auto& isi = spec.payload<sim::IsiSpec>();
    isi.mc_symbols = 1 + rng.uniform_int(100000);
    isi.mc_seed = random_seed(rng);
    isi.reoptimize = rng.bernoulli(0.5);
  } else if (spec.workload == "info_rates") {
    auto& info_rate = spec.payload<sim::InfoRateSpec>();
    info_rate.snr_lo_db = rng.uniform(-10.0, 0.0);
    info_rate.snr_hi_db = rng.uniform(0.0, 40.0);
    info_rate.mc_seed = random_seed(rng);
  } else if (spec.workload == "adc_energy") {
    spec.payload<sim::AdcSpec>().mc_seed = random_seed(rng);
  } else if (spec.workload == "threshold_saturation") {
    spec.payload<sim::SaturationSpec>().terminations = {
        1 + rng.uniform_int(64)};
  } else if (spec.workload == "ldpc_latency") {
    auto& ldpc = spec.payload<sim::LdpcLatencySpec>();
    ldpc.cc_curves = {{1 + rng.uniform_int(64), 3, 8}};
    ldpc.bc_liftings = {1 + rng.uniform_int(400)};
    ldpc.target_ber = rng.uniform(1e-6, 1e-2);
  } else if (spec.workload == "tx_power_sweep") {
    spec.payload<sim::TxPowerSpec>().snr_hi_db = rng.uniform(10.0, 40.0);
  } else if (spec.workload == "coding_plan") {
    spec.payload<sim::CodingSpec>().deployed_lifting =
        1 + rng.uniform_int(64);
  } else if (spec.workload == "noc_saturation") {
    auto& saturation = spec.payload<sim::NocSaturationSpec>();
    saturation.steps = 2 + rng.uniform_int(32);
    saturation.knee_factor = rng.uniform(1.1, 4.0);
  } else if (spec.workload == "link_margin_map") {
    spec.payload<sim::LinkMarginSpec>().min_rate_gbps =
        rng.uniform(10.0, 200.0);
  }
  return spec;
}

TEST(PropertyRoundTrip, ScenarioSpecsSurviveJson) {
  using namespace wi::sim;
  Rng rng(20260731);
  for (std::size_t i = 0; i < kIterations; ++i) {
    const ScenarioSpec spec = random_spec(rng);
    const std::string canonical = scenario_to_string(spec);
    const ScenarioSpec decoded = scenario_from_string(canonical);
    EXPECT_EQ(scenario_to_string(decoded), canonical) << "iteration " << i;
  }
}

TEST(PropertyRoundTrip, CampaignSpecsSurviveJson) {
  using namespace wi::sim;
  Rng rng(20260801);
  for (std::size_t i = 0; i < kIterations; ++i) {
    CampaignSpec campaign;
    campaign.name = "fuzz_campaign_" + std::to_string(i);
    campaign.seeds = 1 + rng.uniform_int(64);
    campaign.base_seed = random_seed(rng);
    campaign.scenario = random_spec(rng);
    const std::string canonical = campaign_to_string(campaign);
    const CampaignSpec decoded = campaign_from_string(canonical);
    EXPECT_EQ(campaign_to_string(decoded), canonical) << "iteration " << i;
  }
}

}  // namespace
}  // namespace wi

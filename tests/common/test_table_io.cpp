#include "wi/common/table_io.hpp"

#include <gtest/gtest.h>

#include "wi/common/status.hpp"

namespace wi {
namespace {

[[nodiscard]] Table sample_table() {
  Table table({"name", "value", "note"});
  table.add_row({"a", "1.25", "plain"});
  table.add_row({"b", "nan", "not-a-number cell"});
  table.add_row({"c", "inf", "positive infinity"});
  table.add_row({"d", "-inf", "comma, in note"});
  table.add_row({"e", "2", "quote \" and\nnewline"});
  return table;
}

TEST(TableCsv, RoundTripsQuotingAndNonFinite) {
  const Table table = sample_table();
  const Table parsed = table_from_csv(to_csv(table));
  EXPECT_EQ(parsed, table);
}

TEST(TableCsv, HeaderlessRoundTripsAsEmptyDocument) {
  const Table headerless;
  EXPECT_EQ(to_csv(headerless), "");
  EXPECT_EQ(table_from_csv(""), headerless);
  EXPECT_EQ(table_from_csv("  \n"), Table({"  "}));  // content, not empty
}

TEST(TableCsv, ParsesCrlfAndMissingFinalNewline) {
  const Table a = table_from_csv("x,y\r\n1,2\r\n");
  EXPECT_EQ(a.rows(), 1u);
  EXPECT_EQ(a.cell(0, 1), "2");
  const Table b = table_from_csv("x,y\n1,");
  EXPECT_EQ(b.cell(0, 0), "1");
  EXPECT_EQ(b.cell(0, 1), "");
}

TEST(TableCsv, RejectsRaggedAndMalformed) {
  EXPECT_THROW((void)table_from_csv("a,b\n1\n"), StatusError);
  EXPECT_THROW((void)table_from_csv("a\n\"unterminated\n"), StatusError);
  EXPECT_THROW((void)table_from_csv("a\nx\"y\n"), StatusError);
}

TEST(TableJson, RoundTrips) {
  const Table table = sample_table();
  EXPECT_EQ(table_from_json(table_to_json(table)), table);
}

TEST(TableJson, HeaderlessRoundTrips) {
  const Table headerless;
  const Json json = table_to_json(headerless);
  EXPECT_TRUE(json.at("headers").is_null());
  EXPECT_EQ(table_from_json(json), headerless);
}

TEST(TableJson, RejectsRowsOnHeaderless) {
  EXPECT_THROW((void)table_from_json(
                   Json::parse(R"({"headers":null,"rows":[["x"]]})")),
               StatusError);
}

TEST(CompareTables, ExactAndTolerantMatches) {
  Table golden({"x", "y"});
  golden.add_row({"1.000", "text"});
  Table actual({"x", "y"});
  actual.add_row({"1.0000004", "text"});
  EXPECT_FALSE(compare_tables(actual, golden, {}).match);  // default tight
  CompareOptions loose;
  loose.rel_tol = 1e-5;
  EXPECT_TRUE(compare_tables(actual, golden, loose).match);
}

TEST(CompareTables, NanMatchesNanAndInfBySign) {
  Table golden({"v"});
  golden.add_row({"nan"});
  golden.add_row({"inf"});
  Table actual({"v"});
  actual.add_row({"nan"});
  actual.add_row({"-inf"});
  const TableDiff diff = compare_tables(actual, golden, {});
  EXPECT_FALSE(diff.match);
  ASSERT_EQ(diff.mismatch_count, 1u);  // nan == nan, -inf != inf
  EXPECT_EQ(diff.mismatches[0].row, 1u);
}

TEST(CompareTables, ReportsShapeErrors) {
  Table golden({"x"});
  golden.add_row({"1"});
  const TableDiff header_diff = compare_tables(Table({"y"}), golden, {});
  EXPECT_FALSE(header_diff.match);
  EXPECT_FALSE(header_diff.shape_error.empty());
  const TableDiff row_diff = compare_tables(Table({"x"}), golden, {});
  EXPECT_FALSE(row_diff.match);
  EXPECT_NE(row_diff.shape_error.find("row count"), std::string::npos);
}

TEST(CompareTables, NonNumericCellsCompareExactly) {
  Table golden({"s"});
  golden.add_row({"12 cycles"});
  Table actual({"s"});
  actual.add_row({"12  cycles"});
  EXPECT_FALSE(compare_tables(actual, golden, {}).match);
  EXPECT_TRUE(compare_tables(golden, golden, {}).match);
}

TEST(CompareTables, FormatDiffListsMismatches) {
  Table golden({"a", "b"});
  golden.add_row({"1", "2"});
  Table actual({"a", "b"});
  actual.add_row({"1", "3"});
  const TableDiff diff = compare_tables(actual, golden, {});
  const std::string text = format_diff(diff, golden);
  EXPECT_NE(text.find("row 0 col 1 (b)"), std::string::npos);
  EXPECT_NE(text.find("expected '2', got '3'"), std::string::npos);
}

}  // namespace
}  // namespace wi

#include "wi/common/json.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "wi/common/status.hpp"

namespace wi {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(Json::parse("-1e-3").as_number(), -1e-3);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNested) {
  const Json json = Json::parse(
      R"({"a": [1, 2, {"b": "x"}], "c": {"d": null}, "e": -4})");
  EXPECT_EQ(json.as_object().size(), 3u);
  EXPECT_DOUBLE_EQ(json.at("a").as_array()[1].as_number(), 2.0);
  EXPECT_EQ(json.at("a").as_array()[2].at("b").as_string(), "x");
  EXPECT_TRUE(json.at("c").at("d").is_null());
  EXPECT_EQ(json.find("missing"), nullptr);
}

TEST(Json, StringEscapes) {
  const Json json = Json::parse(R"("line\nbreak \"quoted\" A\t\\")");
  EXPECT_EQ(json.as_string(), "line\nbreak \"quoted\" A\t\\");
}

TEST(Json, DumpParseRoundTrip) {
  Json object = Json::object();
  object.set("name", Json("sweep/axis=1;x=2"));
  object.set("values", Json(Json::Array{Json(1.5), Json(-2.0), Json(1e20)}));
  object.set("flag", Json(true));
  object.set("none", Json());
  object.set("weird", Json("comma, \"quote\"\nnewline"));
  const std::string compact = object.dump();
  EXPECT_EQ(Json::parse(compact).dump(), compact);
  // Pretty form parses back to the same value too.
  EXPECT_EQ(Json::parse(object.dump(2)).dump(), compact);
}

TEST(Json, DumpIsDeterministicInsertionOrder) {
  Json a = Json::object();
  a.set("z", Json(1.0));
  a.set("a", Json(2.0));
  EXPECT_EQ(a.dump(), R"({"z":1,"a":2})");
}

TEST(Json, IntegersDumpWithoutExponent) {
  EXPECT_EQ(Json(2013.0).dump(), "2013");
  EXPECT_EQ(Json(0.0).dump(), "0");
}

TEST(Json, RejectsMalformed) {
  EXPECT_THROW((void)Json::parse(""), StatusError);
  EXPECT_THROW((void)Json::parse("{"), StatusError);
  EXPECT_THROW((void)Json::parse("[1,]"), StatusError);
  EXPECT_THROW((void)Json::parse("tru"), StatusError);
  EXPECT_THROW((void)Json::parse("1 2"), StatusError);
  EXPECT_THROW((void)Json::parse("\"unterminated"), StatusError);
  EXPECT_THROW((void)Json::parse(R"({"a":1,"a":2})"), StatusError);
}

TEST(Json, DeepNestingIsAnErrorNotAStackOverflow) {
  std::string deep;
  deep.append(100000, '[');
  deep.append(100000, ']');
  EXPECT_THROW((void)Json::parse(deep), StatusError);
  // A legal document at moderate depth still parses.
  std::string moderate;
  moderate.append(100, '[');
  moderate += '1';
  moderate.append(100, ']');
  EXPECT_EQ(Json::parse(moderate).as_array().size(), 1u);
}

TEST(Json, RejectsNonFiniteNumbers) {
  EXPECT_THROW(Json(std::numeric_limits<double>::infinity()), StatusError);
  EXPECT_THROW(Json(std::numeric_limits<double>::quiet_NaN()), StatusError);
}

TEST(Json, AccessorKindMismatchThrows) {
  const Json json = Json::parse("[1]");
  EXPECT_THROW((void)json.as_object(), StatusError);
  EXPECT_THROW((void)json.at("x"), StatusError);
  EXPECT_THROW((void)json.as_array()[0].as_string(), StatusError);
}

}  // namespace
}  // namespace wi
